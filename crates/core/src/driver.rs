//! Driving transactions through the simulator.
//!
//! Two modes, both built on command-loop processes:
//!
//! * **Synchronous** ([`TmHarness::begin`]/[`read`](TmHarness::read)/…):
//!   the driver issues one t-operation, runs its process until the
//!   response marker appears, and gets back the result *plus the exact
//!   cost of the operation* (steps, distinct base objects, RMRs). Each
//!   operation runs step-contention-free — precisely the fragments
//!   measured in Theorems 3(1) and 3(2) — while the driver remains free to
//!   interleave operations of different processes, as the proofs'
//!   `π·β·ρ·α` executions require.
//! * **Scripted** ([`TmHarness::run_script`] + [`TmHarness::run_all`]):
//!   whole transactions execute autonomously under a schedule policy,
//!   producing the randomized concurrent executions the correctness
//!   property tests feed to the `ptm-model` checkers.

use crate::api::{SimTm, SimTxn};
use ptm_sim::{
    Ctx, LogEntry, Marker, Metrics, ProcessId, SchedulePolicy, Sim, SimBuilder, StepEvent, TObjId,
    TOpDesc, TOpResult, TxId, Word,
};
use std::sync::Arc;

/// One operation of a transaction script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptOp {
    /// Read a t-object.
    Read(TObjId),
    /// Write a value to a t-object.
    Write(TObjId, Word),
}

/// A whole transaction to run autonomously.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxScript {
    /// Operations in issue order (a `tryC` is appended automatically).
    pub ops: Vec<ScriptOp>,
    /// Retry (as a fresh transaction) until the transaction commits.
    pub retry_until_commit: bool,
}

/// Commands understood by [`tm_process_body`].
#[derive(Debug, Clone)]
pub enum TxCommand {
    /// Start a transaction with the given id.
    Begin(TxId),
    /// Issue `read_k(X)`.
    Read(TObjId),
    /// Issue `write_k(X, v)`.
    Write(TObjId, Word),
    /// Issue `tryC_k()`.
    TryCommit,
    /// Run a whole script autonomously (ids derived from the process id).
    RunScript(TxScript),
    /// Terminate the process.
    Stop,
}

pub(crate) fn logged_read(
    txn: &mut dyn SimTxn,
    ctx: &Ctx,
    tx: TxId,
    x: TObjId,
) -> Result<Word, ()> {
    let op = TOpDesc::Read(x);
    ctx.marker(Marker::TxInvoke { tx, op });
    match txn.read(ctx, x) {
        Ok(v) => {
            ctx.marker(Marker::TxResponse {
                tx,
                op,
                res: TOpResult::Value(v),
            });
            Ok(v)
        }
        Err(_) => {
            ctx.marker(Marker::TxResponse {
                tx,
                op,
                res: TOpResult::Aborted,
            });
            Err(())
        }
    }
}

pub(crate) fn logged_write(
    txn: &mut dyn SimTxn,
    ctx: &Ctx,
    tx: TxId,
    x: TObjId,
    v: Word,
) -> Result<(), ()> {
    let op = TOpDesc::Write(x, v);
    ctx.marker(Marker::TxInvoke { tx, op });
    match txn.write(ctx, x, v) {
        Ok(()) => {
            ctx.marker(Marker::TxResponse {
                tx,
                op,
                res: TOpResult::Ok,
            });
            Ok(())
        }
        Err(_) => {
            ctx.marker(Marker::TxResponse {
                tx,
                op,
                res: TOpResult::Aborted,
            });
            Err(())
        }
    }
}

pub(crate) fn logged_commit(txn: &mut dyn SimTxn, ctx: &Ctx, tx: TxId) -> Result<(), ()> {
    let op = TOpDesc::TryCommit;
    ctx.marker(Marker::TxInvoke { tx, op });
    match txn.try_commit(ctx) {
        Ok(()) => {
            ctx.marker(Marker::TxResponse {
                tx,
                op,
                res: TOpResult::Committed,
            });
            Ok(())
        }
        Err(_) => {
            ctx.marker(Marker::TxResponse {
                tx,
                op,
                res: TOpResult::Aborted,
            });
            Err(())
        }
    }
}

fn run_script(tm: &dyn SimTm, ctx: &Ctx, script: &TxScript, attempt_base: &mut u64) {
    loop {
        let tx = TxId::new((ctx.pid().index() as u64 + 1) * 1_000_000 + *attempt_base);
        *attempt_base += 1;
        let mut txn = tm.begin(tx);
        let mut aborted = false;
        for op in &script.ops {
            let r = match *op {
                ScriptOp::Read(x) => logged_read(txn.as_mut(), ctx, tx, x).map(|_| ()),
                ScriptOp::Write(x, v) => logged_write(txn.as_mut(), ctx, tx, x, v),
            };
            if r.is_err() {
                aborted = true;
                break;
            }
        }
        if !aborted && logged_commit(txn.as_mut(), ctx, tx).is_ok() {
            return;
        }
        if !script.retry_until_commit {
            return;
        }
    }
}

/// The command-loop body run by every harness process.
pub fn tm_process_body(tm: Arc<dyn SimTm>, ctx: &Ctx) {
    let mut current: Option<(TxId, Box<dyn SimTxn>)> = None;
    let mut script_counter = 0u64;
    loop {
        match ctx.recv::<TxCommand>() {
            TxCommand::Begin(id) => {
                current = Some((id, tm.begin(id)));
            }
            TxCommand::Read(x) => {
                let (tx, txn) = current.as_mut().expect("Read outside a transaction");
                if logged_read(txn.as_mut(), ctx, *tx, x).is_err() {
                    current = None;
                }
            }
            TxCommand::Write(x, v) => {
                let (tx, txn) = current.as_mut().expect("Write outside a transaction");
                if logged_write(txn.as_mut(), ctx, *tx, x, v).is_err() {
                    current = None;
                }
            }
            TxCommand::TryCommit => {
                let (tx, txn) = current.as_mut().expect("TryCommit outside a transaction");
                let _ = logged_commit(txn.as_mut(), ctx, *tx);
                current = None;
            }
            TxCommand::RunScript(script) => {
                run_script(tm.as_ref(), ctx, &script, &mut script_counter);
            }
            TxCommand::Stop => return,
        }
    }
}

/// Exact cost of one t-operation execution, from log/metric deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCost {
    /// Primitive applications during the operation.
    pub steps: usize,
    /// Distinct base objects accessed.
    pub distinct_objects: usize,
    /// Nontrivial primitive applications.
    pub nontrivial_steps: usize,
    /// Write-through CC RMRs charged.
    pub rmr_write_through: u64,
    /// Write-back CC RMRs charged.
    pub rmr_write_back: u64,
    /// DSM RMRs charged.
    pub rmr_dsm: u64,
}

/// Harness owning a simulation whose processes all run
/// [`tm_process_body`] over a shared TM.
#[derive(Debug)]
pub struct TmHarness {
    sim: Sim,
    tm_name: &'static str,
    next_tx: u64,
}

impl TmHarness {
    /// Builds a harness: installs the TM via `install`, spawns
    /// `n_processes` command-loop processes.
    pub fn new(
        n_processes: usize,
        install: impl FnOnce(&mut SimBuilder) -> Arc<dyn SimTm>,
    ) -> Self {
        let mut builder = SimBuilder::new(n_processes);
        let tm = install(&mut builder);
        let tm_name = tm.name();
        for _ in 0..n_processes {
            let tm = Arc::clone(&tm);
            builder.add_process(move |ctx| tm_process_body(tm, ctx));
        }
        TmHarness {
            sim: builder.start(),
            tm_name,
            next_tx: 0,
        }
    }

    /// The underlying simulation, for fine-grained stepping.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Name of the TM under test.
    pub fn tm_name(&self) -> &'static str {
        self.tm_name
    }

    /// Starts a transaction on `pid` and returns its id. The `Begin`
    /// command is consumed immediately (no TM steps are taken).
    pub fn begin(&mut self, pid: ProcessId) -> TxId {
        self.next_tx += 1;
        let id = TxId::new(self.next_tx);
        self.sim.send(pid, TxCommand::Begin(id));
        self.sim.step(pid).expect("consume Begin");
        id
    }

    /// Issues one operation on `pid` and runs it to its response,
    /// step-contention-free. Returns the response and its exact cost.
    ///
    /// # Panics
    ///
    /// Panics if the operation does not respond within a large step
    /// budget — which happens when a *blocking* TM operation (e.g. a
    /// global-lock acquisition) waits on a lock held by another process
    /// that this synchronous driver is not stepping. Use scripted mode
    /// with a whole-system scheduler for such interleavings.
    fn run_op(&mut self, pid: ProcessId, cmd: TxCommand) -> (TOpResult, OpCost) {
        const OP_BUDGET: usize = 100_000;
        let log_from = self.sim.log_len();
        let before = self.sim.metrics();
        self.sim.send(pid, cmd);
        self.sim.step(pid).expect("consume command");
        let mut result = None;
        let mut taken = 0;
        while result.is_none() {
            taken += 1;
            assert!(
                taken <= OP_BUDGET,
                "operation on {pid} took more than {OP_BUDGET} steps: the TM \
                 is blocked on another process (drive it with a scheduler instead)"
            );
            match self.sim.step(pid).expect("operation step") {
                StepEvent::Marker(Marker::TxResponse { res, .. }) => result = Some(res),
                _ => continue,
            }
        }
        let after = self.sim.metrics();
        let frag = self.sim.log_from(log_from);
        (
            result.expect("loop sets result"),
            op_cost(&frag, pid, &before, &after),
        )
    }

    /// `read_k(X)` on `pid`, run to completion.
    pub fn read(&mut self, pid: ProcessId, x: TObjId) -> (TOpResult, OpCost) {
        self.run_op(pid, TxCommand::Read(x))
    }

    /// `write_k(X, v)` on `pid`, run to completion.
    pub fn write(&mut self, pid: ProcessId, x: TObjId, v: Word) -> (TOpResult, OpCost) {
        self.run_op(pid, TxCommand::Write(x, v))
    }

    /// `tryC_k()` on `pid`, run to completion.
    pub fn try_commit(&mut self, pid: ProcessId) -> (TOpResult, OpCost) {
        self.run_op(pid, TxCommand::TryCommit)
    }

    /// Runs a whole committed transaction on `pid`: begin, the given
    /// writes, tryC. Panics if it aborts (use in contention-free setup
    /// phases).
    pub fn run_writer(&mut self, pid: ProcessId, writes: &[(TObjId, Word)]) -> TxId {
        let id = self.begin(pid);
        for &(x, v) in writes {
            let (res, _) = self.write(pid, x, v);
            assert_eq!(res, TOpResult::Ok, "setup write aborted");
        }
        let (res, _) = self.try_commit(pid);
        assert_eq!(res, TOpResult::Committed, "setup commit aborted");
        id
    }

    /// Queues a script on `pid` (runs when scheduled via
    /// [`TmHarness::run_all`]).
    pub fn run_script(&mut self, pid: ProcessId, script: TxScript) {
        self.sim.send(pid, TxCommand::RunScript(script));
    }

    /// Runs all queued scripts under `policy` until quiescence.
    ///
    /// # Panics
    ///
    /// Panics if the budget of `max_steps` is exhausted (livelock).
    pub fn run_all(&mut self, policy: &mut dyn SchedulePolicy, max_steps: usize) -> usize {
        let steps = ptm_sim::run_policy(&self.sim, policy, max_steps);
        assert!(
            steps < max_steps,
            "script execution exceeded {max_steps} steps"
        );
        steps
    }

    /// Stops all processes cleanly.
    pub fn stop_all(&mut self) {
        for p in 0..self.sim.n_processes() {
            let pid = ProcessId::new(p);
            if self.sim.status(pid) != ptm_sim::ProcStatus::Finished {
                self.sim.send(pid, TxCommand::Stop);
                let _ = self.sim.step(pid);
            }
        }
    }

    /// The execution log so far.
    pub fn log(&self) -> Vec<LogEntry> {
        self.sim.log()
    }

    /// Parses the history out of the log.
    ///
    /// # Panics
    ///
    /// Panics if the log is not a well-formed history (harness bug).
    pub fn history(&self) -> ptm_model::History {
        ptm_model::History::from_log(&self.log()).expect("harness produces well-formed histories")
    }
}

fn op_cost(frag: &[LogEntry], pid: ProcessId, before: &Metrics, after: &Metrics) -> OpCost {
    let delta = after - before;
    let mems: Vec<_> = frag
        .iter()
        .filter(|e| e.pid == pid)
        .filter_map(LogEntry::mem)
        .collect();
    OpCost {
        steps: mems.len(),
        distinct_objects: mems
            .iter()
            .map(|m| m.obj)
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        nontrivial_steps: mems.iter().filter(|m| m.prim.is_nontrivial()).count(),
        rmr_write_through: delta.rmr_write_through(pid),
        rmr_write_back: delta.rmr_write_back(pid),
        rmr_dsm: delta.rmr_dsm(pid),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progressive::ProgressiveTm;
    use ptm_model::TxStatus;
    use ptm_sim::RandomPolicy;

    fn harness(n: usize, objects: usize) -> TmHarness {
        TmHarness::new(n, |b| Arc::new(ProgressiveTm::install(b, objects)))
    }

    #[test]
    fn synchronous_transaction_roundtrip() {
        let mut h = harness(2, 2);
        let p0 = ProcessId::new(0);
        h.begin(p0);
        let (res, cost) = h.write(p0, TObjId::new(0), 42);
        assert_eq!(res, TOpResult::Ok);
        assert_eq!(cost.steps, 0); // writes are buffered
        let (res, cost) = h.try_commit(p0);
        assert_eq!(res, TOpResult::Committed);
        assert!(cost.steps > 0);

        h.begin(p0);
        let (res, cost) = h.read(p0, TObjId::new(0));
        assert_eq!(res, TOpResult::Value(42));
        assert_eq!(cost.steps, 3);
        assert_eq!(cost.nontrivial_steps, 0); // invisible reads
        let (res, _) = h.try_commit(p0);
        assert_eq!(res, TOpResult::Committed);

        let hist = h.history();
        assert_eq!(hist.len(), 2);
        assert!(hist.is_complete());
        assert!(ptm_model::is_opaque(&hist));
    }

    #[test]
    fn interleaved_ops_on_two_processes() {
        let mut h = harness(2, 1);
        let (p0, p1) = (ProcessId::new(0), ProcessId::new(1));
        // T1 reads X0; T2 writes X0 and commits; T1's next read aborts.
        h.begin(p0);
        let (r, _) = h.read(p0, TObjId::new(0));
        assert_eq!(r, TOpResult::Value(0));
        h.begin(p1);
        h.write(p1, TObjId::new(0), 5);
        let (c, _) = h.try_commit(p1);
        assert_eq!(c, TOpResult::Committed);
        let (r2, _) = h.read(p0, TObjId::new(0));
        assert_eq!(r2, TOpResult::Aborted);
        let hist = h.history();
        assert_eq!(hist.tx(TxId::new(1)).unwrap().status(), TxStatus::Aborted);
        assert!(ptm_model::is_opaque(&hist));
        assert!(ptm_model::is_progressive(&hist));
    }

    #[test]
    fn scripts_run_under_policy() {
        let mut h = harness(3, 2);
        for p in 0..3 {
            h.run_script(
                ProcessId::new(p),
                TxScript {
                    ops: vec![
                        ScriptOp::Read(TObjId::new(0)),
                        ScriptOp::Write(TObjId::new(1), p as Word),
                    ],
                    retry_until_commit: true,
                },
            );
        }
        h.run_all(&mut RandomPolicy::seeded(3), 100_000);
        let hist = h.history();
        // All three scripts eventually committed.
        let committed = hist.committed().len();
        assert_eq!(committed, 3);
        assert!(ptm_model::is_opaque(&hist));
        h.stop_all();
    }

    #[test]
    fn run_writer_setup_helper() {
        let mut h = harness(1, 3);
        h.run_writer(
            ProcessId::new(0),
            &[(TObjId::new(0), 1), (TObjId::new(2), 9)],
        );
        let hist = h.history();
        assert_eq!(hist.committed().len(), 1);
    }
}
