//! TL2 (Dice–Shalev–Shavit, DISC'06) over the simulated memory — the
//! **non-DAP ablation** for Theorem 3.
//!
//! TL2 is the canonical progressive TM the paper's introduction cites. It
//! keeps a *global version clock*, so a t-read validates in O(1) steps
//! against the snapshot time instead of re-validating the read set —
//! exactly the cost Theorem 3 says cannot be achieved by a weak-DAP TM.
//! The price is disjoint-access parallelism: every transaction reads (and
//! every updating commit bumps) the shared clock, making disjoint-access
//! transactions contend on it. The experiment tables show the two regimes
//! side by side: `ir-progressive` at Θ(m²) total steps, `tl2` at Θ(m).
//!
//! ## Protocol
//!
//! Global `clock`; per t-object `X`: `meta[X]` (`version << 1 | locked`)
//! and `val[X]`.
//!
//! * begin (lazy, at first operation): `rv ← clock`.
//! * `read(X)`: `m1 ← meta[X]`; abort if locked or `version(m1) > rv`;
//!   `v ← val[X]`; abort if `meta[X] ≠ m1`; return `v`. O(1) steps.
//! * `write(X, v)`: buffered.
//! * `tryC` (updating): CAS-lock the write set in item order, abort on
//!   failure; `wv ← fetch_add(clock, 1) + 1`; validate the read set
//!   (unlocked or own, version ≤ rv); install values; release locks with
//!   `meta[X] ← wv << 1`. Read-only transactions commit with no steps.

use crate::api::{Aborted, SimTm, SimTxn, TmProperties};
use ptm_sim::{BaseObjectId, Ctx, Home, SimBuilder, TObjId, TxId, Word};
use std::sync::Arc;

#[derive(Debug)]
struct Layout {
    clock: BaseObjectId,
    meta: Vec<BaseObjectId>,
    val: Vec<BaseObjectId>,
}

/// The TL2-style global-clock TM (see module docs).
#[derive(Debug, Clone)]
pub struct Tl2Tm {
    layout: Arc<Layout>,
}

impl Tl2Tm {
    /// Allocates the global clock and per-object metadata.
    pub fn install(builder: &mut SimBuilder, n_tobjects: usize) -> Self {
        let clock = builder.alloc("tl2.clock", 0, Home::Global);
        let meta = (0..n_tobjects)
            .map(|i| builder.alloc(format!("tl2.meta[X{i}]"), 0, Home::Global))
            .collect();
        let val = (0..n_tobjects)
            .map(|i| builder.alloc(format!("tl2.val[X{i}]"), 0, Home::Global))
            .collect();
        Tl2Tm {
            layout: Arc::new(Layout { clock, meta, val }),
        }
    }
}

impl SimTm for Tl2Tm {
    fn name(&self) -> &'static str {
        "tl2"
    }

    fn n_tobjects(&self) -> usize {
        self.layout.val.len()
    }

    fn properties(&self) -> TmProperties {
        TmProperties {
            weak_dap: false, // the global clock is shared metadata
            invisible_reads: true,
            opaque: true,
            strongly_progressive: true,
            blocking: false,
        }
    }

    fn begin(&self, _tx: TxId) -> Box<dyn SimTxn> {
        Box::new(Tl2Txn {
            layout: Arc::clone(&self.layout),
            rv: None,
            rset: Vec::new(),
            wset: Vec::new(),
        })
    }
}

#[derive(Debug)]
struct Tl2Txn {
    layout: Arc<Layout>,
    /// Snapshot time, read lazily at the first operation.
    rv: Option<Word>,
    /// Items read (their pre-validated meta words).
    rset: Vec<(TObjId, Word)>,
    wset: Vec<(TObjId, Word)>,
}

impl Tl2Txn {
    fn snapshot(&mut self, ctx: &Ctx) -> Word {
        match self.rv {
            Some(rv) => rv,
            None => {
                let rv = ctx.read(self.layout.clock);
                self.rv = Some(rv);
                rv
            }
        }
    }

    fn buffered(&self, x: TObjId) -> Option<Word> {
        self.wset
            .iter()
            .rev()
            .find(|(y, _)| *y == x)
            .map(|(_, v)| *v)
    }
}

impl SimTxn for Tl2Txn {
    fn read(&mut self, ctx: &Ctx, x: TObjId) -> Result<Word, Aborted> {
        if let Some(v) = self.buffered(x) {
            return Ok(v);
        }
        let rv = self.snapshot(ctx);
        let m1 = ctx.read(self.layout.meta[x.index()]);
        if m1 & 1 == 1 || (m1 >> 1) > rv {
            return Err(Aborted);
        }
        let v = ctx.read(self.layout.val[x.index()]);
        let m2 = ctx.read(self.layout.meta[x.index()]);
        if m2 != m1 {
            return Err(Aborted);
        }
        self.rset.push((x, m1));
        Ok(v)
    }

    fn write(&mut self, ctx: &Ctx, x: TObjId, v: Word) -> Result<(), Aborted> {
        self.snapshot(ctx);
        if let Some(slot) = self.wset.iter_mut().find(|(y, _)| *y == x) {
            slot.1 = v;
        } else {
            self.wset.push((x, v));
        }
        Ok(())
    }

    fn try_commit(&mut self, ctx: &Ctx) -> Result<(), Aborted> {
        if self.wset.is_empty() {
            return Ok(()); // read-only commits at its snapshot time
        }
        let rv = self.snapshot(ctx);
        let mut to_lock: Vec<TObjId> = self.wset.iter().map(|(x, _)| *x).collect();
        to_lock.sort_unstable();
        let mut held: Vec<(TObjId, Word)> = Vec::new();
        for x in to_lock {
            let m = ctx.read(self.layout.meta[x.index()]);
            if m & 1 == 1 || (m >> 1) > rv {
                return self.rollback(ctx, &held);
            }
            if !ctx.cas(self.layout.meta[x.index()], m, m | 1) {
                return self.rollback(ctx, &held);
            }
            held.push((x, m));
        }
        let wv = ctx.fetch_add(self.layout.clock, 1) + 1;
        for &(y, m) in &self.rset {
            if held.iter().any(|(x, _)| *x == y) {
                continue;
            }
            if ctx.read(self.layout.meta[y.index()]) != m {
                return self.rollback(ctx, &held);
            }
        }
        for &(x, v) in &self.wset {
            ctx.write(self.layout.val[x.index()], v);
        }
        for &(x, _) in &held {
            ctx.write(self.layout.meta[x.index()], wv << 1);
        }
        Ok(())
    }
}

impl Tl2Txn {
    fn rollback(&mut self, ctx: &Ctx, held: &[(TObjId, Word)]) -> Result<(), Aborted> {
        for &(x, m) in held {
            ctx.write(self.layout.meta[x.index()], m);
        }
        Err(Aborted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_roundtrip() {
        let mut b = SimBuilder::new(1);
        let tm = Tl2Tm::install(&mut b, 2);
        let tm2 = tm.clone();
        b.add_process(move |ctx| {
            let mut t = tm2.begin(TxId::new(1));
            t.write(ctx, TObjId::new(0), 11).unwrap();
            t.try_commit(ctx).unwrap();
            let mut t = tm2.begin(TxId::new(2));
            assert_eq!(t.read(ctx, TObjId::new(0)).unwrap(), 11);
            t.try_commit(ctx).unwrap();
        });
        let sim = b.start();
        sim.run_to_block(0.into(), 1000);
        assert!(sim.panic_of(0.into()).is_none());
    }

    /// Reads are O(1): total steps for m reads are linear, not quadratic.
    #[test]
    fn read_steps_are_constant() {
        let m = 8;
        let mut b = SimBuilder::new(1);
        let tm = Tl2Tm::install(&mut b, m);
        let tm2 = tm.clone();
        b.add_process(move |ctx| {
            let mut t = tm2.begin(TxId::new(1));
            for i in 0..m {
                t.read(ctx, TObjId::new(i)).unwrap();
            }
            t.try_commit(ctx).unwrap();
        });
        let sim = b.start();
        let total = sim.run_to_block(0.into(), 10_000);
        // 1 clock read + 3 steps per read.
        assert_eq!(total, 1 + 3 * m);
    }

    #[test]
    fn stale_snapshot_aborts_reader() {
        // p0 snapshots, p1 commits a write, p0's read must abort
        // (version > rv).
        let mut b = SimBuilder::new(2);
        let tm = Tl2Tm::install(&mut b, 1);
        let tm0 = tm.clone();
        let tm1 = tm.clone();
        b.add_process(move |ctx| {
            let mut t = tm0.begin(TxId::new(1));
            // Force the snapshot now via a read of a second... use recv to
            // sequence: first snapshot, then (after p1 commits) the read.
            let _: u8 = ctx.recv();
            let r = t.read(ctx, TObjId::new(0));
            assert_eq!(r, Err(Aborted));
        });
        b.add_process(move |ctx| {
            let mut t = tm1.begin(TxId::new(2));
            t.write(ctx, TObjId::new(0), 5).unwrap();
            t.try_commit(ctx).unwrap();
        });
        let sim = b.start();
        // p1 commits first? No: we need p0's snapshot BEFORE p1 commits,
        // but snapshot is lazy. Send the command, step p0 through its
        // clock read only, then run p1, then finish p0.
        sim.send(0.into(), 0u8);
        sim.step(0.into()).unwrap(); // command consumed
        sim.step(0.into()).unwrap(); // clock read (snapshot rv=0)
        sim.run_to_block(1.into(), 1000); // p1 commits, clock -> 1
        sim.run_to_block(0.into(), 1000); // p0 reads meta: version 1 > rv 0
        assert!(sim.panic_of(0.into()).is_none());
        assert!(sim.panic_of(1.into()).is_none());
    }

    #[test]
    fn write_write_race_has_one_winner() {
        let mut b = SimBuilder::new(2);
        let tm = Tl2Tm::install(&mut b, 1);
        for pid in 0..2u64 {
            let tmc = tm.clone();
            b.add_process(move |ctx| {
                let mut t = tmc.begin(TxId::new(pid + 1));
                t.write(ctx, TObjId::new(0), pid + 10).unwrap();
                let _: u8 = ctx.recv(); // hold here so both are poised
                let r = t.try_commit(ctx);
                ctx.marker(ptm_sim::Marker::Note {
                    tag: "commit",
                    a: pid,
                    b: r.is_ok() as u64,
                });
            });
        }
        let sim = b.start();
        sim.send(0.into(), 0u8);
        sim.send(1.into(), 0u8);
        // Interleave the two commits step by step.
        loop {
            let runnable = sim.runnable();
            if runnable.is_empty() {
                break;
            }
            for pid in runnable {
                let _ = sim.step(pid);
            }
        }
        let log = sim.log();
        let winners: Vec<u64> = log
            .iter()
            .filter_map(|e| e.marker())
            .filter_map(|m| match m {
                ptm_sim::Marker::Note {
                    tag: "commit",
                    a,
                    b,
                } if *b == 1 => Some(*a),
                _ => None,
            })
            .collect();
        assert_eq!(
            winners.len(),
            1,
            "exactly one of two single-item writers commits"
        );
    }

    #[test]
    fn properties() {
        let mut b = SimBuilder::new(1);
        let tm = Tl2Tm::install(&mut b, 1);
        let p = tm.properties();
        assert!(!p.weak_dap);
        assert!(p.invisible_reads && p.opaque && p.strongly_progressive);
    }
}
