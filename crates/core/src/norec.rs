//! NOrec (Dalessandro–Spear–Scott, PPoPP'10) over the simulated memory —
//! the **minimal-metadata, non-DAP** design point.
//!
//! NOrec abolishes ownership records entirely: the only TM metadata is a
//! single global sequence lock, and consistency is maintained by
//! *value-based validation* — when the global counter moves, the reader
//! re-checks that every value it read is still the current one. In
//! uncontended executions a t-read costs O(1) steps, like TL2; under
//! concurrent commits a read degrades to O(|rset|). Either way the design
//! gives up weak DAP (every commit serializes on the one counter), which
//! is how it escapes Theorem 3's quadratic bound.
//!
//! ## Protocol
//!
//! Global `seqlock` (odd while a committer is writing); per t-object only
//! `val[X]`.
//!
//! * begin (lazy): spin until `seqlock` is even, `rv ← seqlock`.
//! * `read(X)`: `v ← val[X]`; if `seqlock == rv` return `v`; otherwise
//!   wait for an even counter, re-validate the read set *by value* (abort
//!   on mismatch), adopt the new `rv`, and retry the read.
//! * `write(X, v)`: buffered.
//! * `tryC` (updating): CAS `seqlock: rv → rv+1`; on failure re-validate
//!   and retry with the new `rv`; once locked, install values and release
//!   with `seqlock ← rv+2`. Read-only transactions commit in zero steps.

use crate::api::{Aborted, SimTm, SimTxn, TmProperties};
use ptm_sim::{BaseObjectId, Ctx, Home, SimBuilder, TObjId, TxId, Word};
use std::sync::Arc;

#[derive(Debug)]
struct Layout {
    seqlock: BaseObjectId,
    val: Vec<BaseObjectId>,
}

/// The NOrec-style TM (see module docs).
#[derive(Debug, Clone)]
pub struct NorecTm {
    layout: Arc<Layout>,
}

impl NorecTm {
    /// Allocates the global sequence lock and the value cells.
    pub fn install(builder: &mut SimBuilder, n_tobjects: usize) -> Self {
        let seqlock = builder.alloc("norec.seqlock", 0, Home::Global);
        let val = (0..n_tobjects)
            .map(|i| builder.alloc(format!("norec.val[X{i}]"), 0, Home::Global))
            .collect();
        NorecTm {
            layout: Arc::new(Layout { seqlock, val }),
        }
    }
}

impl SimTm for NorecTm {
    fn name(&self) -> &'static str {
        "norec"
    }

    fn n_tobjects(&self) -> usize {
        self.layout.val.len()
    }

    fn properties(&self) -> TmProperties {
        TmProperties {
            weak_dap: false, // single global sequence lock
            invisible_reads: true,
            opaque: true,
            strongly_progressive: true,
            blocking: true, // readers/committers wait out an active writer
        }
    }

    fn begin(&self, _tx: TxId) -> Box<dyn SimTxn> {
        Box::new(NorecTxn {
            layout: Arc::clone(&self.layout),
            rv: None,
            rset: Vec::new(),
            wset: Vec::new(),
        })
    }
}

#[derive(Debug)]
struct NorecTxn {
    layout: Arc<Layout>,
    rv: Option<Word>,
    /// `(item, value read)` — validation is by value.
    rset: Vec<(TObjId, Word)>,
    wset: Vec<(TObjId, Word)>,
}

impl NorecTxn {
    fn snapshot(&mut self, ctx: &Ctx) -> Word {
        match self.rv {
            Some(rv) => rv,
            None => loop {
                let t = ctx.read(self.layout.seqlock);
                if t & 1 == 0 {
                    self.rv = Some(t);
                    return t;
                }
            },
        }
    }

    fn buffered(&self, x: TObjId) -> Option<Word> {
        self.wset
            .iter()
            .rev()
            .find(|(y, _)| *y == x)
            .map(|(_, v)| *v)
    }

    /// Waits for an even counter, then value-validates the read set.
    /// Returns the counter value at which validation succeeded.
    fn validate(&mut self, ctx: &Ctx) -> Result<Word, Aborted> {
        loop {
            let t = loop {
                let t = ctx.read(self.layout.seqlock);
                if t & 1 == 0 {
                    break t;
                }
            };
            let mut ok = true;
            for &(y, v) in &self.rset {
                if ctx.read(self.layout.val[y.index()]) != v {
                    ok = false;
                    break;
                }
            }
            if !ok {
                return Err(Aborted);
            }
            // If the counter moved while we validated, do it again.
            if ctx.read(self.layout.seqlock) == t {
                self.rv = Some(t);
                return Ok(t);
            }
        }
    }
}

impl SimTxn for NorecTxn {
    fn read(&mut self, ctx: &Ctx, x: TObjId) -> Result<Word, Aborted> {
        if let Some(v) = self.buffered(x) {
            return Ok(v);
        }
        let mut rv = self.snapshot(ctx);
        loop {
            let v = ctx.read(self.layout.val[x.index()]);
            let t = ctx.read(self.layout.seqlock);
            if t == rv {
                self.rset.push((x, v));
                return Ok(v);
            }
            // Counter moved: re-validate by value and retry the read.
            rv = self.validate(ctx)?;
        }
    }

    fn write(&mut self, ctx: &Ctx, x: TObjId, v: Word) -> Result<(), Aborted> {
        self.snapshot(ctx);
        if let Some(slot) = self.wset.iter_mut().find(|(y, _)| *y == x) {
            slot.1 = v;
        } else {
            self.wset.push((x, v));
        }
        Ok(())
    }

    fn try_commit(&mut self, ctx: &Ctx) -> Result<(), Aborted> {
        if self.wset.is_empty() {
            return Ok(());
        }
        let mut rv = self.snapshot(ctx);
        // Acquire the global sequence lock at a validated snapshot.
        while !ctx.cas(self.layout.seqlock, rv, rv + 1) {
            rv = self.validate(ctx)?;
        }
        for &(x, v) in &self.wset {
            ctx.write(self.layout.val[x.index()], v);
        }
        ctx.write(self.layout.seqlock, rv + 2);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_roundtrip() {
        let mut b = SimBuilder::new(1);
        let tm = NorecTm::install(&mut b, 2);
        let tm2 = tm.clone();
        b.add_process(move |ctx| {
            let mut t = tm2.begin(TxId::new(1));
            t.write(ctx, TObjId::new(0), 3).unwrap();
            t.write(ctx, TObjId::new(1), 4).unwrap();
            t.try_commit(ctx).unwrap();
            let mut t = tm2.begin(TxId::new(2));
            assert_eq!(t.read(ctx, TObjId::new(0)).unwrap(), 3);
            assert_eq!(t.read(ctx, TObjId::new(1)).unwrap(), 4);
            t.try_commit(ctx).unwrap();
        });
        let sim = b.start();
        sim.run_to_block(0.into(), 1000);
        assert!(sim.panic_of(0.into()).is_none());
    }

    /// Solo reads are O(1) (2 steps each after the snapshot).
    #[test]
    fn solo_read_cost_is_linear_total() {
        let m = 8;
        let mut b = SimBuilder::new(1);
        let tm = NorecTm::install(&mut b, m);
        let tm2 = tm.clone();
        b.add_process(move |ctx| {
            let mut t = tm2.begin(TxId::new(1));
            for i in 0..m {
                t.read(ctx, TObjId::new(i)).unwrap();
            }
            t.try_commit(ctx).unwrap();
        });
        let sim = b.start();
        let total = sim.run_to_block(0.into(), 10_000);
        // 1 snapshot + 2 per read (val + seqlock check).
        assert_eq!(total, 1 + 2 * m);
    }

    /// A concurrent commit between reads triggers value validation; a
    /// conflicting value change aborts, an ABA-equal value survives.
    #[test]
    fn value_validation_tolerates_equal_values() {
        let mut b = SimBuilder::new(2);
        let tm = NorecTm::install(&mut b, 2);
        let tm0 = tm.clone();
        let tm1 = tm.clone();
        b.add_process(move |ctx| {
            let mut t = tm0.begin(TxId::new(1));
            assert_eq!(t.read(ctx, TObjId::new(0)).unwrap(), 0);
            let _: u8 = ctx.recv();
            // p1 has committed X1:=9 meanwhile; X0 still has value 0, so
            // value validation passes and this read succeeds.
            assert_eq!(t.read(ctx, TObjId::new(1)).unwrap(), 9);
            t.try_commit(ctx).unwrap();
        });
        b.add_process(move |ctx| {
            let mut t = tm1.begin(TxId::new(2));
            t.write(ctx, TObjId::new(1), 9).unwrap();
            t.try_commit(ctx).unwrap();
        });
        let sim = b.start();
        sim.run_to_block(0.into(), 100); // p0 blocked on command
        sim.run_to_block(1.into(), 100); // p1 commits
        sim.send(0.into(), 0u8);
        sim.run_to_block(0.into(), 1000);
        assert!(sim.panic_of(0.into()).is_none());
    }

    #[test]
    fn conflicting_update_aborts_reader() {
        let mut b = SimBuilder::new(2);
        let tm = NorecTm::install(&mut b, 2);
        let tm0 = tm.clone();
        let tm1 = tm.clone();
        b.add_process(move |ctx| {
            let mut t = tm0.begin(TxId::new(1));
            assert_eq!(t.read(ctx, TObjId::new(0)).unwrap(), 0);
            let _: u8 = ctx.recv();
            // p1 committed X0:=7: value validation must fail.
            assert_eq!(t.read(ctx, TObjId::new(1)), Err(Aborted));
        });
        b.add_process(move |ctx| {
            let mut t = tm1.begin(TxId::new(2));
            t.write(ctx, TObjId::new(0), 7).unwrap();
            t.try_commit(ctx).unwrap();
        });
        let sim = b.start();
        sim.run_to_block(0.into(), 100);
        sim.run_to_block(1.into(), 100);
        sim.send(0.into(), 0u8);
        sim.run_to_block(0.into(), 1000);
        assert!(sim.panic_of(0.into()).is_none());
    }

    #[test]
    fn properties() {
        let mut b = SimBuilder::new(1);
        let tm = NorecTm::install(&mut b, 1);
        let p = tm.properties();
        assert!(!p.weak_dap);
        assert!(p.invisible_reads && p.opaque && p.strongly_progressive);
        assert!(p.blocking);
    }
}
