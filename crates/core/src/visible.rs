//! The **visible-reads ablation**: a progressive, opaque TM whose t-reads
//! cost O(1) steps — because they announce themselves in shared memory.
//!
//! Theorem 3's quadratic bound needs *both* weak DAP and weak invisible
//! reads. This TM keeps metadata per-object (weak DAP) but drops read
//! invisibility: a reader registers in a per-object reader bitset, and a
//! committing writer *aborts* every registered reader of the items it
//! writes before installing new values. Readers therefore never validate —
//! a consistent snapshot is guaranteed by "if it changed, I was aborted" —
//! and the i-th t-read takes O(1) steps instead of Ω(i). The experiment
//! tables show it dodging the lower bound at the price of nontrivial
//! events inside t-reads (which `ptm-model`'s visibility checker flags).
//!
//! ## Protocol
//!
//! Per t-object `X`: `val[X]`, `wlock[X]` (0 free, else `pid+1`), and
//! `readers[X]` (a pid bitset, so at most 63 processes). Per process `p`:
//! `status[p] = epoch << 1 | aborted`. Epochs make abort marks
//! transaction-local: a writer may only abort the epoch it observed, so a
//! stale abort aimed at a finished transaction cannot leak into its
//! successor.
//!
//! * first op: bump own epoch (`status[p] ← (epoch+1) << 1`).
//! * `read(X)`: set own bit in `readers[X]` (CAS loop); abort if
//!   `wlock[X]` is held; `v ← val[X]`; abort if own status says aborted;
//!   return `v`.
//! * `write(X, v)`: buffered.
//! * `tryC` (updating): CAS-lock the write set in item order; for every
//!   registered reader of a locked item, CAS its status from the observed
//!   active epoch to aborted; re-check own status; install values; unlock.
//! * any transaction end (commit or abort): clear own bits from all
//!   registered `readers[·]` bitsets.

use crate::api::{Aborted, SimTm, SimTxn, TmProperties};
use ptm_sim::{BaseObjectId, Ctx, Home, SimBuilder, TObjId, TxId, Word};
use std::sync::Arc;

#[derive(Debug)]
struct Layout {
    val: Vec<BaseObjectId>,
    wlock: Vec<BaseObjectId>,
    readers: Vec<BaseObjectId>,
    status: Vec<BaseObjectId>,
}

/// The visible-reads TM (see module docs).
#[derive(Debug, Clone)]
pub struct VisibleReadTm {
    layout: Arc<Layout>,
}

impl VisibleReadTm {
    /// Allocates per-object and per-process metadata.
    ///
    /// # Panics
    ///
    /// Panics if the system has more than 63 processes (the reader bitset
    /// is one word).
    pub fn install(builder: &mut SimBuilder, n_tobjects: usize) -> Self {
        assert!(
            builder.n_processes() <= 63,
            "reader bitsets support at most 63 processes"
        );
        let val = (0..n_tobjects)
            .map(|i| builder.alloc(format!("vis.val[X{i}]"), 0, Home::Global))
            .collect();
        let wlock = (0..n_tobjects)
            .map(|i| builder.alloc(format!("vis.wlock[X{i}]"), 0, Home::Global))
            .collect();
        let readers = (0..n_tobjects)
            .map(|i| builder.alloc(format!("vis.readers[X{i}]"), 0, Home::Global))
            .collect();
        let status = (0..builder.n_processes())
            .map(|p| {
                let home = Home::Process(ptm_sim::ProcessId::new(p));
                builder.alloc(format!("vis.status[p{p}]"), 0, home)
            })
            .collect();
        VisibleReadTm {
            layout: Arc::new(Layout {
                val,
                wlock,
                readers,
                status,
            }),
        }
    }
}

impl SimTm for VisibleReadTm {
    fn name(&self) -> &'static str {
        "visible-reads"
    }

    fn n_tobjects(&self) -> usize {
        self.layout.val.len()
    }

    fn properties(&self) -> TmProperties {
        TmProperties {
            weak_dap: true, // metadata is per-object / per-process
            invisible_reads: false,
            opaque: true,
            strongly_progressive: true,
            blocking: false,
        }
    }

    fn begin(&self, _tx: TxId) -> Box<dyn SimTxn> {
        Box::new(VisibleTxn {
            layout: Arc::clone(&self.layout),
            epoch: None,
            registered: Vec::new(),
            wset: Vec::new(),
            values: Vec::new(),
        })
    }
}

#[derive(Debug)]
struct VisibleTxn {
    layout: Arc<Layout>,
    /// Own active status word (`epoch << 1`), set at the first operation.
    epoch: Option<Word>,
    /// Items whose reader bit we hold.
    registered: Vec<TObjId>,
    wset: Vec<(TObjId, Word)>,
    /// Values read, for read-your-reads stability.
    values: Vec<(TObjId, Word)>,
}

impl VisibleTxn {
    /// Bumps the epoch at the first operation of the transaction.
    fn ensure_begun(&mut self, ctx: &Ctx) -> Word {
        match self.epoch {
            Some(e) => e,
            None => {
                let me = ctx.pid().index();
                let old = ctx.read(self.layout.status[me]);
                let fresh = ((old >> 1) + 1) << 1;
                ctx.write(self.layout.status[me], fresh);
                self.epoch = Some(fresh);
                fresh
            }
        }
    }

    fn buffered(&self, x: TObjId) -> Option<Word> {
        self.wset
            .iter()
            .rev()
            .find(|(y, _)| *y == x)
            .map(|(_, v)| *v)
    }

    /// Whether this transaction is still in its active epoch.
    fn still_active(&self, ctx: &Ctx) -> bool {
        let me = ctx.pid().index();
        let epoch = self.epoch.expect("ensure_begun called first");
        ctx.read(self.layout.status[me]) == epoch
    }

    /// CAS-loop to set or clear our bit in a reader bitset.
    fn set_reader_bit(&self, ctx: &Ctx, x: TObjId, on: bool) {
        let me = ctx.pid().index() as Word;
        let bit = 1u64 << me;
        let obj = self.layout.readers[x.index()];
        loop {
            let cur = ctx.read(obj);
            let next = if on { cur | bit } else { cur & !bit };
            if next == cur || ctx.cas(obj, cur, next) {
                return;
            }
        }
    }

    /// Deregisters from everything; called on any transaction end.
    fn deregister_all(&mut self, ctx: &Ctx) {
        let regs = std::mem::take(&mut self.registered);
        for x in regs {
            self.set_reader_bit(ctx, x, false);
        }
    }

    fn die(&mut self, ctx: &Ctx) -> Aborted {
        self.deregister_all(ctx);
        Aborted
    }
}

impl SimTxn for VisibleTxn {
    fn read(&mut self, ctx: &Ctx, x: TObjId) -> Result<Word, Aborted> {
        if let Some(v) = self.buffered(x) {
            return Ok(v);
        }
        if let Some(&(_, v)) = self.values.iter().find(|(y, _)| *y == x) {
            // Still registered: the value cannot have changed without us
            // having been aborted, which the next conflicting op detects.
            return Ok(v);
        }
        self.ensure_begun(ctx);
        // Announce the read *first*, then check for a writer: any writer
        // that installs after our check must have seen our registration.
        self.set_reader_bit(ctx, x, true);
        self.registered.push(x);
        if ctx.read(self.layout.wlock[x.index()]) != 0 {
            return Err(self.die(ctx));
        }
        let v = ctx.read(self.layout.val[x.index()]);
        if !self.still_active(ctx) {
            return Err(self.die(ctx));
        }
        self.values.push((x, v));
        Ok(v)
    }

    fn write(&mut self, ctx: &Ctx, x: TObjId, v: Word) -> Result<(), Aborted> {
        self.ensure_begun(ctx);
        if let Some(slot) = self.wset.iter_mut().find(|(y, _)| *y == x) {
            slot.1 = v;
        } else {
            self.wset.push((x, v));
        }
        Ok(())
    }

    fn try_commit(&mut self, ctx: &Ctx) -> Result<(), Aborted> {
        if self.epoch.is_none() {
            return Ok(()); // empty transaction
        }
        if self.wset.is_empty() {
            // Reads were kept valid by visibility; nothing to validate.
            let ok = self.still_active(ctx);
            self.deregister_all(ctx);
            return if ok { Ok(()) } else { Err(Aborted) };
        }
        let me = ctx.pid().index();
        let mut to_lock: Vec<TObjId> = self.wset.iter().map(|(x, _)| *x).collect();
        to_lock.sort_unstable();
        let mut held: Vec<TObjId> = Vec::new();
        for x in to_lock {
            if !ctx.cas(self.layout.wlock[x.index()], 0, me as Word + 1) {
                return self.rollback(ctx, &held);
            }
            held.push(x);
        }
        // Abort every registered reader of the items we are writing.
        for &x in &held {
            let readers = ctx.read(self.layout.readers[x.index()]);
            for q in 0..64 {
                if q == me || readers & (1 << q) == 0 {
                    continue;
                }
                let s = ctx.read(self.layout.status[q]);
                if s & 1 == 0 {
                    // Abort exactly the epoch we observed; a failed CAS
                    // means that transaction already ended.
                    ctx.cas(self.layout.status[q], s, s | 1);
                }
            }
        }
        // Our own reads are protected by registration: if a writer
        // invalidated one, it marked us aborted.
        if !self.still_active(ctx) {
            return self.rollback(ctx, &held);
        }
        for &(x, v) in &self.wset {
            ctx.write(self.layout.val[x.index()], v);
        }
        for &x in &held {
            ctx.write(self.layout.wlock[x.index()], 0);
        }
        self.deregister_all(ctx);
        Ok(())
    }
}

impl VisibleTxn {
    fn rollback(&mut self, ctx: &Ctx, held: &[TObjId]) -> Result<(), Aborted> {
        for &x in held {
            ctx.write(self.layout.wlock[x.index()], 0);
        }
        Err(self.die(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_roundtrip() {
        let mut b = SimBuilder::new(1);
        let tm = VisibleReadTm::install(&mut b, 2);
        let tm2 = tm.clone();
        b.add_process(move |ctx| {
            let mut t = tm2.begin(TxId::new(1));
            t.write(ctx, TObjId::new(0), 8).unwrap();
            t.try_commit(ctx).unwrap();
            let mut t = tm2.begin(TxId::new(2));
            assert_eq!(t.read(ctx, TObjId::new(0)).unwrap(), 8);
            assert_eq!(t.read(ctx, TObjId::new(1)).unwrap(), 0);
            t.try_commit(ctx).unwrap();
        });
        let sim = b.start();
        sim.run_to_block(0.into(), 1000);
        assert!(sim.panic_of(0.into()).is_none());
    }

    /// Reads cost O(1) steps — no incremental validation.
    #[test]
    fn read_steps_are_constant() {
        let m = 8;
        let mut b = SimBuilder::new(1);
        let tm = VisibleReadTm::install(&mut b, m);
        let tm2 = tm.clone();
        b.add_process(move |ctx| {
            let mut t = tm2.begin(TxId::new(1));
            for i in 0..m {
                t.read(ctx, TObjId::new(i)).unwrap();
            }
            t.try_commit(ctx).unwrap();
        });
        let sim = b.start();
        let total = sim.run_to_block(0.into(), 10_000);
        // 2 (epoch bump) + 5 per read (reg read+CAS, wlock, val, status)
        // + commit: 1 status check + m deregister (read+CAS each).
        assert_eq!(total, 2 + 5 * m + 1 + 2 * m);
    }

    /// A committing writer aborts a registered reader.
    #[test]
    fn writer_aborts_visible_reader() {
        let mut b = SimBuilder::new(2);
        let tm = VisibleReadTm::install(&mut b, 2);
        let tm0 = tm.clone();
        let tm1 = tm.clone();
        b.add_process(move |ctx| {
            let mut t = tm0.begin(TxId::new(1));
            assert_eq!(t.read(ctx, TObjId::new(0)).unwrap(), 0);
            let _: u8 = ctx.recv();
            // p1 has committed a write to X0: our next op must abort.
            assert_eq!(t.read(ctx, TObjId::new(1)), Err(Aborted));
        });
        b.add_process(move |ctx| {
            let mut t = tm1.begin(TxId::new(2));
            t.write(ctx, TObjId::new(0), 5).unwrap();
            t.try_commit(ctx).unwrap();
        });
        let sim = b.start();
        sim.run_to_block(0.into(), 100); // reader registered on X0
        sim.run_to_block(1.into(), 100); // writer commits, aborting reader
        sim.send(0.into(), 0u8);
        sim.run_to_block(0.into(), 1000);
        assert!(sim.panic_of(0.into()).is_none());
        assert!(sim.panic_of(1.into()).is_none());
    }

    /// A stale abort mark cannot leak into the reader's next transaction.
    #[test]
    fn epochs_isolate_transactions() {
        let mut b = SimBuilder::new(2);
        let tm = VisibleReadTm::install(&mut b, 2);
        let tm0 = tm.clone();
        let tm1 = tm.clone();
        b.add_process(move |ctx| {
            // First transaction reads X0 and commits.
            let mut t = tm0.begin(TxId::new(1));
            t.read(ctx, TObjId::new(0)).unwrap();
            t.try_commit(ctx).unwrap();
            let _: u8 = ctx.recv();
            // Second transaction must be unaffected by any abort aimed at
            // the first.
            let mut t = tm0.begin(TxId::new(3));
            assert!(t.read(ctx, TObjId::new(1)).is_ok());
            t.try_commit(ctx).unwrap();
        });
        b.add_process(move |ctx| {
            let mut t = tm1.begin(TxId::new(2));
            t.write(ctx, TObjId::new(0), 5).unwrap();
            t.try_commit(ctx).unwrap();
        });
        let sim = b.start();
        sim.run_to_block(0.into(), 100); // reader's first tx done
        sim.run_to_block(1.into(), 100); // writer commits (reader dereg'd)
        sim.send(0.into(), 0u8);
        sim.run_to_block(0.into(), 1000);
        assert!(sim.panic_of(0.into()).is_none());
    }

    #[test]
    fn properties() {
        let mut b = SimBuilder::new(1);
        let tm = VisibleReadTm::install(&mut b, 1);
        let p = tm.properties();
        assert!(p.weak_dap && p.opaque && p.strongly_progressive);
        assert!(!p.invisible_reads && !p.blocking);
    }
}
