//! # ptm-core — the paper's TM algorithms, executable and instrumented
//!
//! The primary contribution of *Progressive Transactional Memory in Time
//! and Space* (Kuznetsov & Ravi, PACT 2015) is a set of lower bounds on
//! lock-based TMs. This crate makes them observable by implementing, over
//! the instrumented shared memory of [`ptm_sim`], one TM per point of the
//! design space the theorems carve out:
//!
//! | TM | weak DAP | invisible reads | read cost | escape hatch |
//! |----|----------|-----------------|-----------|--------------|
//! | [`ProgressiveTm`] | yes | yes | Θ(i) per i-th read — **the lower bound is tight** | — |
//! | [`VisibleReadTm`] | yes | **no** | O(1) | reads announce themselves |
//! | [`Tl2Tm`] | **no** | yes | O(1) | global version clock |
//! | [`NorecTm`] | **no** | yes | O(1) solo | global sequence lock |
//! | [`GlockTm`] | no | no | O(1) | serial execution |
//!
//! plus **Algorithm 1** ([`TmMutex`]): the mutex `L(M)` built from any
//! strictly serializable, strongly progressive single-object TM, which
//! carries the `Ω(n log n)` RMR bound of Theorem 9.
//!
//! The [`TmHarness`] drives any of these through exact executions
//! (step-contention-free per-operation fragments, or scripted concurrent
//! runs under seeded schedulers) and reports per-operation costs.
//!
//! ## Example
//!
//! ```
//! use ptm_core::{ProgressiveTm, SimTm, TmHarness};
//! use ptm_sim::{TObjId, TOpResult};
//! use std::sync::Arc;
//!
//! let mut h = TmHarness::new(1, |b| Arc::new(ProgressiveTm::install(b, 4)));
//! let p0 = 0.into();
//! h.begin(p0);
//! for i in 0..4 {
//!     let (res, cost) = h.read(p0, TObjId::new(i));
//!     assert_eq!(res, TOpResult::Value(0));
//!     // Incremental validation: the i-th read costs 3 + i steps.
//!     assert_eq!(cost.steps, 3 + i);
//! }
//! let (res, _) = h.try_commit(p0);
//! assert_eq!(res, TOpResult::Committed);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod api;
mod driver;
mod glock;
mod mvtm;
mod norec;
mod progressive;
mod tl2;
mod tlrw;
mod tm_mutex;
mod visible;

pub use api::{Aborted, SimTm, SimTxn, TmProperties};
pub use driver::{tm_process_body, OpCost, ScriptOp, TmHarness, TxCommand, TxScript};
pub use glock::GlockTm;
pub use mvtm::{MvTm, DEFAULT_VERSIONS};
pub use norec::NorecTm;
pub use progressive::ProgressiveTm;
pub use tl2::Tl2Tm;
pub use tlrw::TlrwTm;
pub use tm_mutex::TmMutex;
pub use visible::VisibleReadTm;

use ptm_sim::SimBuilder;
use std::sync::Arc;

/// The TM implementations swept by the experiment harness, in table order.
pub const ALL_TMS: &[TmKind] = &[
    TmKind::Progressive,
    TmKind::Visible,
    TmKind::Tl2,
    TmKind::Norec,
    TmKind::Glock,
];

/// Enumerates the TM implementations for uniform experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TmKind {
    /// [`ProgressiveTm`] — invisible reads + incremental validation.
    Progressive,
    /// [`VisibleReadTm`] — visible reads, O(1) validation.
    Visible,
    /// [`Tl2Tm`] — global clock.
    Tl2,
    /// [`NorecTm`] — global sequence lock, value validation.
    Norec,
    /// [`GlockTm`] — single global lock.
    Glock,
    /// [`MvTm`] — bounded multi-version (extension; not part of
    /// [`ALL_TMS`] because its progress guarantee is weaker — see the
    /// module docs).
    Mv,
    /// [`TlrwTm`] — pessimistic read-write locks (extension; not in
    /// [`ALL_TMS`] because its abort-on-upgrade variant is not strongly
    /// progressive — see the module docs).
    Tlrw,
}

impl TmKind {
    /// Installs the TM into a builder.
    pub fn install(self, builder: &mut SimBuilder, n_tobjects: usize) -> Arc<dyn SimTm> {
        match self {
            TmKind::Progressive => Arc::new(ProgressiveTm::install(builder, n_tobjects)),
            TmKind::Visible => Arc::new(VisibleReadTm::install(builder, n_tobjects)),
            TmKind::Tl2 => Arc::new(Tl2Tm::install(builder, n_tobjects)),
            TmKind::Norec => Arc::new(NorecTm::install(builder, n_tobjects)),
            TmKind::Glock => Arc::new(GlockTm::install(builder, n_tobjects)),
            TmKind::Mv => Arc::new(MvTm::install(builder, n_tobjects)),
            TmKind::Tlrw => Arc::new(TlrwTm::install(builder, n_tobjects)),
        }
    }

    /// Table label of the TM.
    pub fn name(self) -> &'static str {
        match self {
            TmKind::Progressive => "ir-progressive",
            TmKind::Visible => "visible-reads",
            TmKind::Tl2 => "tl2",
            TmKind::Norec => "norec",
            TmKind::Glock => "glock",
            TmKind::Mv => "mv",
            TmKind::Tlrw => "tlrw",
        }
    }
}
