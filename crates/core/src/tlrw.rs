//! TLRW-style read-write lock TM (Dice–Shavit, SPAA'10 — cited by the
//! paper as the canonical *visible-read* production TM).
//!
//! Where `visible-reads` announces readers so writers can abort them,
//! TLRW goes fully **pessimistic**: a t-read takes a per-object read
//! lock and holds it to commit, so no validation is ever needed — reads
//! stay trivially consistent because conflicting writers simply cannot
//! commit underneath them. The cost profile is the mirror image of the
//! paper's bound: O(1) steps per read with *no* quadratic term, paid for
//! with nontrivial primitives inside every t-read (reads are as visible
//! as they come) and with writers aborting whenever any reader is
//! present.
//!
//! ## Protocol
//!
//! Per t-object `X`, a single read-write word `rw[X]`: bit 0 is the
//! writer flag, the remaining bits count readers in units of 2.
//!
//! * `read(X)`: `fetch_add(rw[X], 2)`; if the writer bit was set, undo
//!   with `fetch_add(−2)` and abort; otherwise read `val[X]` under the
//!   read lock and hold it.
//! * `write(X, v)`: buffered.
//! * `tryC`: for each written item, CAS `rw[X]` from exactly "only my
//!   read lock" (2 if read, else 0) to the writer flag 1 — any other
//!   state means a concurrent reader/writer, abort. Then install values,
//!   release write locks, and drop remaining read locks.
//!
//! Aborts happen only when the lock word proves a concurrent conflicting
//! transaction — progressive. It is **not strongly progressive**: two
//! read-to-write upgraders on the same item each see the other's read
//! lock, and both abort (real TLRW blocks instead, trading liveness; the
//! abort variant trades Definition 1). The test suite demonstrates the
//! violation and the `ptm-model` checker catching it — a negative
//! specimen the checker-driven methodology is designed to expose.
//!
//! The **native twin** of this protocol is `ptm_stm::Algorithm::Tlrw`
//! (`crates/stm`), which transplants the same fetch-add reader
//! announcement onto the real-threads engine's striped orec table —
//! there the simulator's exact step counts become `StatsSnapshot`
//! counters (`validation_probes` stays 0, `reader_conflicts` counts the
//! lock-word aborts) and wall-clock throughput in
//! `BENCH_native_stm.json`'s `read_mostly` ladder.

use crate::api::{Aborted, SimTm, SimTxn, TmProperties};
use ptm_sim::{BaseObjectId, Ctx, Home, SimBuilder, TObjId, TxId, Word};
use std::sync::Arc;

const WRITER: Word = 1;
const READER: Word = 2;

#[derive(Debug)]
struct Layout {
    rw: Vec<BaseObjectId>,
    val: Vec<BaseObjectId>,
}

/// The TLRW-style pessimistic read-write lock TM (see module docs).
#[derive(Debug, Clone)]
pub struct TlrwTm {
    layout: Arc<Layout>,
}

impl TlrwTm {
    /// Allocates the per-object lock words and value cells.
    pub fn install(builder: &mut SimBuilder, n_tobjects: usize) -> Self {
        let rw = (0..n_tobjects)
            .map(|i| builder.alloc(format!("tlrw.rw[X{i}]"), 0, Home::Global))
            .collect();
        let val = (0..n_tobjects)
            .map(|i| builder.alloc(format!("tlrw.val[X{i}]"), 0, Home::Global))
            .collect();
        TlrwTm {
            layout: Arc::new(Layout { rw, val }),
        }
    }
}

impl SimTm for TlrwTm {
    fn name(&self) -> &'static str {
        "tlrw"
    }

    fn n_tobjects(&self) -> usize {
        self.layout.val.len()
    }

    fn properties(&self) -> TmProperties {
        TmProperties {
            weak_dap: true, // strictly per-object metadata
            invisible_reads: false,
            opaque: true,
            // Two upgraders on one item can both abort: Definition 1
            // does not hold (see the module docs and tests).
            strongly_progressive: false,
            blocking: false,
        }
    }

    fn begin(&self, _tx: TxId) -> Box<dyn SimTxn> {
        Box::new(TlrwTxn {
            layout: Arc::clone(&self.layout),
            read_locked: Vec::new(),
            wset: Vec::new(),
        })
    }
}

#[derive(Debug)]
struct TlrwTxn {
    layout: Arc<Layout>,
    /// Items whose read lock we hold.
    read_locked: Vec<TObjId>,
    wset: Vec<(TObjId, Word)>,
}

impl TlrwTxn {
    fn buffered(&self, x: TObjId) -> Option<Word> {
        self.wset
            .iter()
            .rev()
            .find(|(y, _)| *y == x)
            .map(|(_, v)| *v)
    }

    fn drop_read_locks(&mut self, ctx: &Ctx) {
        let locked = std::mem::take(&mut self.read_locked);
        for x in locked {
            ctx.fetch_add(self.layout.rw[x.index()], READER.wrapping_neg());
        }
    }

    fn die(&mut self, ctx: &Ctx) -> Aborted {
        self.drop_read_locks(ctx);
        Aborted
    }
}

impl SimTxn for TlrwTxn {
    fn read(&mut self, ctx: &Ctx, x: TObjId) -> Result<Word, Aborted> {
        if let Some(v) = self.buffered(x) {
            return Ok(v);
        }
        if self.read_locked.contains(&x) {
            // Already locked: the value cannot have changed.
            return Ok(ctx.read(self.layout.val[x.index()]));
        }
        let prev = ctx.fetch_add(self.layout.rw[x.index()], READER);
        if prev & WRITER != 0 {
            // A writer holds X: undo our increment and abort.
            ctx.fetch_add(self.layout.rw[x.index()], READER.wrapping_neg());
            return Err(self.die(ctx));
        }
        self.read_locked.push(x);
        Ok(ctx.read(self.layout.val[x.index()]))
    }

    fn write(&mut self, _ctx: &Ctx, x: TObjId, v: Word) -> Result<(), Aborted> {
        if let Some(slot) = self.wset.iter_mut().find(|(y, _)| *y == x) {
            slot.1 = v;
        } else {
            self.wset.push((x, v));
        }
        Ok(())
    }

    fn try_commit(&mut self, ctx: &Ctx) -> Result<(), Aborted> {
        if self.wset.is_empty() {
            // Read-only: locks kept everything consistent; just release.
            self.drop_read_locks(ctx);
            return Ok(());
        }
        let mut to_lock: Vec<TObjId> = self.wset.iter().map(|(x, _)| *x).collect();
        to_lock.sort_unstable();
        let mut held: Vec<(TObjId, bool)> = Vec::new(); // (item, was read-locked)
        for x in to_lock {
            let upgrading = self.read_locked.contains(&x);
            let expected = if upgrading { READER } else { 0 };
            if !ctx.cas(self.layout.rw[x.index()], expected, WRITER) {
                // Another reader or writer is present: roll back. All
                // releases are arithmetic (never blind writes) so that
                // transient reader increments racing with us survive.
                for &(y, was_read) in &held {
                    let delta = if was_read {
                        READER.wrapping_sub(WRITER)
                    } else {
                        WRITER.wrapping_neg()
                    };
                    ctx.fetch_add(self.layout.rw[y.index()], delta);
                    if was_read {
                        // The restored read lock must be released by
                        // `die` below — forgetting to re-register it
                        // here leaked the lock and starved every later
                        // writer on the item.
                        self.read_locked.push(y);
                    }
                }
                return Err(self.die(ctx));
            }
            if upgrading {
                self.read_locked.retain(|&y| y != x);
            }
            held.push((x, upgrading));
        }
        for &(x, v) in &self.wset {
            ctx.write(self.layout.val[x.index()], v);
        }
        for &(x, _) in &held {
            ctx.fetch_add(self.layout.rw[x.index()], WRITER.wrapping_neg());
        }
        self.drop_read_locks(ctx);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::TmHarness;
    use ptm_sim::{ProcessId, TOpResult};

    fn harness(n: usize, objects: usize) -> TmHarness {
        TmHarness::new(n, move |b| Arc::new(TlrwTm::install(b, objects)))
    }

    #[test]
    fn solo_roundtrip() {
        let mut h = harness(1, 2);
        let p = ProcessId::new(0);
        h.run_writer(p, &[(TObjId::new(0), 5)]);
        h.begin(p);
        assert_eq!(h.read(p, TObjId::new(0)).0, TOpResult::Value(5));
        assert_eq!(h.read(p, TObjId::new(1)).0, TOpResult::Value(0));
        assert_eq!(h.try_commit(p).0, TOpResult::Committed);
        h.stop_all();
        assert!(ptm_model::is_opaque(&h.history()));
    }

    #[test]
    fn reads_cost_constant_steps() {
        let m = 12;
        let mut h = TmHarness::new(1, move |b| Arc::new(TlrwTm::install(b, m)));
        let p = ProcessId::new(0);
        h.begin(p);
        let mut costs = Vec::new();
        for i in 0..m {
            let (res, cost) = h.read(p, TObjId::new(i));
            assert_eq!(res, TOpResult::Value(0));
            costs.push(cost.steps);
        }
        // fetch_add + val read: 2 steps, flat.
        assert!(costs.iter().all(|&c| c == 2), "{costs:?}");
        // Read-only commit releases m read locks.
        let (_, commit) = h.try_commit(p);
        assert_eq!(commit.steps, m);
        h.stop_all();
    }

    #[test]
    fn writer_aborts_on_present_reader() {
        let mut h = harness(2, 1);
        let (r, w) = (ProcessId::new(0), ProcessId::new(1));
        h.begin(r);
        assert_eq!(h.read(r, TObjId::new(0)).0, TOpResult::Value(0));
        // Writer conflicts with the held read lock and must abort.
        h.begin(w);
        assert_eq!(h.write(w, TObjId::new(0), 9).0, TOpResult::Ok);
        assert_eq!(h.try_commit(w).0, TOpResult::Aborted);
        // The reader is untouched and commits.
        assert_eq!(h.try_commit(r).0, TOpResult::Committed);
        h.stop_all();
        let hist = h.history();
        assert!(ptm_model::is_opaque(&hist));
        assert!(ptm_model::is_progressive(&hist));
    }

    #[test]
    fn reader_aborts_on_present_writer_midcommit() {
        // Interleave so the writer holds the write lock when the reader
        // arrives: drive the writer's commit step by step.
        let mut h = harness(2, 2);
        let (r, w) = (ProcessId::new(0), ProcessId::new(1));
        h.begin(w);
        h.write(w, TObjId::new(0), 9);
        // Step the writer's tryC just past the lock acquisition: send the
        // command, then step until the first CAS happened.
        h.sim().send(w, crate::driver::TxCommand::TryCommit);
        h.sim().step(w).unwrap(); // consume command
        h.sim().step(w).unwrap(); // TxInvoke marker
        h.sim().step(w).unwrap(); // CAS rw[X0] -> writer locked
                                  // Reader now collides with the held write lock.
        h.begin(r);
        let (res, _) = h.read(r, TObjId::new(0));
        assert_eq!(res, TOpResult::Aborted);
        // Let the writer finish.
        let steps = h.sim().run_until(w, 1000, |_| false);
        assert!(matches!(steps, ptm_sim::RunOutcome::Blocked(_)));
        h.stop_all();
        let hist = h.history();
        assert!(ptm_model::is_opaque(&hist));
        assert!(ptm_model::is_strongly_progressive(&hist));
    }

    #[test]
    fn upgrade_read_to_write() {
        let mut h = harness(1, 1);
        let p = ProcessId::new(0);
        h.begin(p);
        assert_eq!(h.read(p, TObjId::new(0)).0, TOpResult::Value(0));
        assert_eq!(h.write(p, TObjId::new(0), 3).0, TOpResult::Ok);
        assert_eq!(h.try_commit(p).0, TOpResult::Committed);
        h.begin(p);
        assert_eq!(h.read(p, TObjId::new(0)).0, TOpResult::Value(3));
        assert_eq!(h.try_commit(p).0, TOpResult::Committed);
        h.stop_all();
        assert!(ptm_model::is_opaque(&h.history()));
    }

    #[test]
    fn two_upgraders_violate_strong_progressiveness_when_concurrent() {
        // Run both upgraders' commits truly concurrently (interleaved):
        // each sees the other's read lock and both abort — the checker
        // flags the all-aborted single-object conflict class.
        let mut h = harness(2, 1);
        let (p0, p1) = (ProcessId::new(0), ProcessId::new(1));
        h.begin(p0);
        h.begin(p1);
        let _ = h.read(p0, TObjId::new(0));
        let _ = h.read(p1, TObjId::new(0));
        let _ = h.write(p0, TObjId::new(0), 1);
        let _ = h.write(p1, TObjId::new(0), 2);
        // Drive both tryC operations step by step, interleaved.
        h.sim().send(p0, crate::driver::TxCommand::TryCommit);
        h.sim().send(p1, crate::driver::TxCommand::TryCommit);
        loop {
            let runnable = h.sim().runnable();
            if runnable.is_empty() {
                break;
            }
            for pid in runnable {
                let _ = h.sim().step(pid);
            }
        }
        h.stop_all();
        let hist = h.history();
        // Both aborted; the conflict class {T1, T2} on X0 is all-aborted.
        assert_eq!(hist.committed().len(), 0);
        let v = ptm_model::strong_progressiveness_violations(&hist);
        assert_eq!(v.len(), 1, "checker must flag the violation");
        // Plain progressiveness still holds (mutual conflict excuses).
        assert!(ptm_model::is_progressive(&hist));
        assert!(ptm_model::is_opaque(&hist));
    }

    #[test]
    fn upgrade_rollback_releases_restored_read_locks() {
        // Regression: a two-item upgrade whose second CAS fails restores
        // the first item's read lock arithmetically — but used to forget
        // to re-register it in `read_locked`, so the restored lock was
        // never dropped and every later writer on X0 aborted forever.
        let mut h = harness(3, 2);
        let (p0, p1, p2) = (ProcessId::new(0), ProcessId::new(1), ProcessId::new(2));
        h.begin(p0);
        assert_eq!(h.read(p0, TObjId::new(0)).0, TOpResult::Value(0));
        assert_eq!(h.read(p0, TObjId::new(1)).0, TOpResult::Value(0));
        assert_eq!(h.write(p0, TObjId::new(0), 1).0, TOpResult::Ok);
        assert_eq!(h.write(p0, TObjId::new(1), 1).0, TOpResult::Ok);
        // A foreign reader camps on X1, so p0's upgrade locks X0, fails
        // on X1, and rolls back.
        h.begin(p1);
        assert_eq!(h.read(p1, TObjId::new(1)).0, TOpResult::Value(0));
        assert_eq!(h.try_commit(p0).0, TOpResult::Aborted);
        assert_eq!(h.try_commit(p1).0, TOpResult::Committed);
        // No leak: a fresh writer acquires both items and commits.
        h.begin(p2);
        assert_eq!(h.write(p2, TObjId::new(0), 9).0, TOpResult::Ok);
        assert_eq!(h.write(p2, TObjId::new(1), 9).0, TOpResult::Ok);
        assert_eq!(h.try_commit(p2).0, TOpResult::Committed);
        h.begin(p0);
        assert_eq!(h.read(p0, TObjId::new(0)).0, TOpResult::Value(9));
        assert_eq!(h.try_commit(p0).0, TOpResult::Committed);
        h.stop_all();
        let hist = h.history();
        assert!(ptm_model::is_opaque(&hist));
        assert!(ptm_model::is_progressive(&hist));
    }

    #[test]
    fn two_upgraders_one_winner() {
        let mut h = harness(2, 1);
        let (p0, p1) = (ProcessId::new(0), ProcessId::new(1));
        h.begin(p0);
        h.begin(p1);
        let _ = h.read(p0, TObjId::new(0));
        let _ = h.read(p1, TObjId::new(0));
        let _ = h.write(p0, TObjId::new(0), 1);
        let _ = h.write(p1, TObjId::new(0), 2);
        // Both try to upgrade; with both read locks held, *both* CAS
        // attempts fail (each expects to be the only reader): classic
        // upgrade deadlock resolved by aborting.
        let (r0, _) = h.try_commit(p0);
        let (r1, _) = h.try_commit(p1);
        assert!(r0 == TOpResult::Aborted || r1 == TOpResult::Aborted);
        h.stop_all();
        let hist = h.history();
        assert!(ptm_model::is_opaque(&hist));
        assert!(ptm_model::is_progressive(&hist));
    }
}
