//! E13 — transactional data-structure benchmarks (custom harness; the
//! build environment has no criterion).
//!
//! Run with `cargo bench -p ptm-bench --bench structs`; pass `quick` to
//! shrink workloads. Emits `BENCH_structs.json` in the working directory
//! — the structure-level throughput baseline successive PRs compare
//! against.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a.contains("quick"));
    ptm_bench::structs::run_and_emit(quick, "BENCH_structs.json");
}
