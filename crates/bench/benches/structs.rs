//! E13 — transactional data-structure benchmarks (custom harness; the
//! build environment has no criterion).
//!
//! Run with `cargo bench -p ptm-bench --bench structs`; pass `quick` to
//! shrink workloads. Emits the canonical `BENCH_structs.json` at the
//! workspace root — the structure-level throughput baseline successive
//! PRs compare against.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a.contains("quick"));
    ptm_bench::structs::run_and_emit(quick, &ptm_bench::structs::structs_baseline_path());
}
