//! E11 / E12 — native-STM microbenchmarks (custom harness; the build
//! environment has no criterion).
//!
//! Run with `cargo bench -p ptm-bench --bench native_stm`; pass `quick`
//! to shrink workloads. Emits `BENCH_native_stm.json` in the working
//! directory — the read-heavy throughput baseline successive PRs compare
//! against.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a.contains("quick"));
    ptm_bench::native::run_and_emit(quick, "BENCH_native_stm.json");
}
