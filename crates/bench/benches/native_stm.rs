//! E11 / E12 — Criterion microbenchmarks of the native STM.
//!
//! * `read_only_txn/<algo>/<m>` — wall-clock cost of a read-only
//!   transaction over `m` TVars: the hardware echo of Theorem 3(1)
//!   (incremental mode scales quadratically, TL2/NOrec linearly).
//! * `counter_increment/<algo>` — uncontended update-transaction latency.
//! * `bank_contended/<algo>` — 4 threads hammering 8 accounts: end-to-end
//!   throughput with retries (E12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptm_stm::{Algorithm, Stm, TVar};
use std::sync::Arc;
use std::time::Instant;

const ALGOS: &[(&str, Algorithm)] = &[
    ("tl2", Algorithm::Tl2),
    ("incremental", Algorithm::Incremental),
    ("norec", Algorithm::Norec),
];

fn bench_read_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("read_only_txn");
    g.sample_size(20);
    for &(name, algo) in ALGOS {
        for m in [16usize, 64, 256] {
            let stm = Stm::new(algo);
            let vars: Vec<TVar<u64>> = (0..m).map(|_| TVar::new(1)).collect();
            g.bench_with_input(BenchmarkId::new(name, m), &m, |b, _| {
                b.iter(|| {
                    stm.atomically(|tx| {
                        let mut acc = 0u64;
                        for v in &vars {
                            acc = acc.wrapping_add(tx.read(v)?);
                        }
                        Ok(acc)
                    })
                });
            });
        }
    }
    g.finish();
}

fn bench_counter(c: &mut Criterion) {
    let mut g = c.benchmark_group("counter_increment");
    g.sample_size(20);
    for &(name, algo) in ALGOS {
        let stm = Stm::new(algo);
        let v = TVar::new(0u64);
        g.bench_function(name, |b| {
            b.iter(|| {
                stm.atomically(|tx| {
                    let x = tx.read(&v)?;
                    tx.write(&v, x.wrapping_add(1))
                })
            });
        });
    }
    g.finish();
}

fn bench_bank_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("bank_contended");
    g.sample_size(10);
    let threads = 4;
    let txns_per_thread = 2_000;
    for &(name, algo) in ALGOS {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let stm = Arc::new(Stm::new(algo));
                    let accounts: Vec<TVar<u64>> = (0..8).map(|_| TVar::new(1_000)).collect();
                    let start = Instant::now();
                    std::thread::scope(|s| {
                        for t in 0..threads {
                            let stm = Arc::clone(&stm);
                            let accounts = accounts.clone();
                            s.spawn(move || {
                                let mut seed = t as u64 + 1;
                                for _ in 0..txns_per_thread {
                                    seed = seed
                                        .wrapping_mul(6364136223846793005)
                                        .wrapping_add(1442695040888963407);
                                    let from = (seed >> 33) as usize % accounts.len();
                                    let to = (seed >> 13) as usize % accounts.len();
                                    if from == to {
                                        continue;
                                    }
                                    stm.atomically(|tx| {
                                        let a = tx.read(&accounts[from])?;
                                        let b = tx.read(&accounts[to])?;
                                        let amt = a.min(5);
                                        tx.write(&accounts[from], a - amt)?;
                                        tx.write(&accounts[to], b + amt)
                                    });
                                }
                            });
                        }
                    });
                    total += start.elapsed();
                    let sum: u64 = accounts.iter().map(TVar::load).sum();
                    assert_eq!(sum, 8_000, "conservation violated");
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_read_only, bench_counter, bench_bank_contended);
criterion_main!(benches);
