//! E11 / E12 — native-STM microbenchmarks (custom harness; the build
//! environment has no criterion).
//!
//! Run with `cargo bench -p ptm-bench --bench native_stm`; pass `quick`
//! to shrink workloads. Emits the canonical `BENCH_native_stm.json` at
//! the workspace root — the read-heavy throughput baseline successive
//! PRs compare against.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a.contains("quick"));
    ptm_bench::native::run_and_emit(quick, &ptm_bench::native::native_baseline_path());
}
