//! Custom bench harness (no Criterion): regenerates every table of the
//! reproduction deterministically. Run with
//! `cargo bench -p ptm-bench --bench paper_tables`.
//!
//! The measurements are exact step/RMR counts from the simulator, not
//! wall-clock timings, so a plain `main` is the appropriate harness.

fn main() {
    // `--quick` (or the bench filter argument "quick") shrinks sweeps.
    let quick = std::env::args().any(|a| a.contains("quick"));
    ptm_bench::print_all_tables(quick);
}
