//! E1 / E2 — the executions of Figure 1 and Claim 4, replayed exactly.
//!
//! Figure 1 drives Lemma 2: in `π^{i−1} · ρ^i · α_i`, the reader `T_φ`
//! performs `i−1` t-reads, a disjoint writer `T_i` then writes `X_i` and
//! commits, and `T_φ`'s i-th read *must return the new value* — by weak
//! DAP the reader cannot distinguish this execution from `ρ^i · π^{i−1} ·
//! α_i` (Figure 1a) where strict serializability forces the new value.
//!
//! Claim 4 extends it with an extra committed writer `β^ℓ` on an item
//! `T_φ` already read: now `T_φ`'s i-th read may return the initial value
//! or abort, but never the new value of `X_i` alone — returning it would
//! serialize `T_φ` after `T_i` while its earlier read of `X_ℓ` is stale.
//!
//! The functions here replay those interleavings against any of the
//! simulated TMs and hand back the observed responses plus checker
//! verdicts; the integration tests pin the exact outcomes, and the
//! `proof_executions` example prints the traces.

use ptm_core::{TmHarness, TmKind};
use ptm_model::{is_opaque, is_strictly_serializable, History};
use ptm_sim::{ProcessId, TObjId, TOpResult, Word};

/// New value written by the writer transactions.
pub const NEW_VALUE: Word = 42;

/// Outcome of a replayed proof execution.
#[derive(Debug)]
pub struct ProofExecution {
    /// Human-readable name of the execution.
    pub name: String,
    /// Response of `T_φ`'s final (i-th) read.
    pub final_read: TOpResult,
    /// The full history.
    pub history: History,
    /// Checker verdict: opacity.
    pub opaque: bool,
    /// Checker verdict: strict serializability.
    pub strictly_serializable: bool,
}

impl ProofExecution {
    /// Renders the t-operation trace, one line per operation.
    pub fn trace(&self) -> String {
        let mut out = String::new();
        let mut ops: Vec<(usize, String)> = Vec::new();
        for tx in self.history.transactions() {
            for op in &tx.ops {
                ops.push((
                    op.invoke_seq,
                    format!("{}[{}]: {} -> {}", tx.id, tx.pid, op.desc, op.result),
                ));
            }
        }
        ops.sort_by_key(|(seq, _)| *seq);
        for (_, line) in ops {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Figure 1a: `ρ^i · π^{i−1} · α_i` — the writer commits first, then the
/// reader reads everything. Strict serializability forces the i-th read
/// to return [`NEW_VALUE`].
pub fn figure1a(tm: TmKind, i: usize) -> ProofExecution {
    assert!(i >= 2, "Figure 1 needs i >= 2");
    let mut h = TmHarness::new(2, |b| tm.install(b, i));
    let (reader, writer) = (ProcessId::new(0), ProcessId::new(1));
    // ρ^i: T_i writes X_i and commits.
    h.run_writer(writer, &[(TObjId::new(i - 1), NEW_VALUE)]);
    // π^{i-1} · α_i: T_φ reads X_1..X_i.
    h.begin(reader);
    let mut last = TOpResult::Aborted;
    for x in 0..i {
        let (res, _) = h.read(reader, TObjId::new(x));
        last = res;
    }
    let (_, _) = h.try_commit(reader);
    h.stop_all();
    let history = h.history();
    finish("Figure 1a", tm, last, history)
}

/// TMs on which the Figure 1b / Claim 4 interleavings are producible:
/// all except the global-lock TM, whose *reader holds the lock*, so the
/// concurrent writer `ρ^i` cannot complete while `T_φ` is live (the
/// lemma's hypothesis — a writer running step-contention-free from a
/// quiescent configuration — does not hold for a blocking TM).
pub const INTERLEAVABLE_TMS: &[TmKind] = &[
    TmKind::Progressive,
    TmKind::Visible,
    TmKind::Tl2,
    TmKind::Norec,
];

/// Figure 1b: `π^{i−1} · ρ^i · α_i` — the reader performs `i−1` reads,
/// the disjoint writer commits, then the reader reads `X_i`. Lemma 2: the
/// i-th read must return [`NEW_VALUE`] (the TM cannot distinguish this
/// from Figure 1a).
///
/// # Panics
///
/// Panics for [`TmKind::Glock`]: see [`INTERLEAVABLE_TMS`].
pub fn figure1b(tm: TmKind, i: usize) -> ProofExecution {
    assert!(i >= 2, "Figure 1 needs i >= 2");
    assert!(
        INTERLEAVABLE_TMS.contains(&tm),
        "{}: the Figure 1b interleaving is not producible on a blocking TM",
        tm.name()
    );
    let mut h = TmHarness::new(2, |b| tm.install(b, i));
    let (reader, writer) = (ProcessId::new(0), ProcessId::new(1));
    // π^{i-1}: T_φ reads X_1..X_{i-1} (initial values).
    h.begin(reader);
    for x in 0..i - 1 {
        let (res, _) = h.read(reader, TObjId::new(x));
        assert_eq!(res, TOpResult::Value(0), "π reads initial values");
    }
    // ρ^i: T_i writes X_i and commits (disjoint from the read set so far).
    h.run_writer(writer, &[(TObjId::new(i - 1), NEW_VALUE)]);
    // α_i: the i-th read.
    let (last, _) = h.read(reader, TObjId::new(i - 1));
    if last != TOpResult::Aborted {
        let (_, _) = h.try_commit(reader);
    }
    h.stop_all();
    finish("Figure 1b", tm, last, h.history())
}

/// Claim 4: `π^{i−1} · β^ℓ · ρ^i · α_i` — as Figure 1b, but a second
/// writer `T_ℓ` first overwrites `X_ℓ` (already read by `T_φ`). The i-th
/// read may return the initial value or abort, never [`NEW_VALUE`].
///
/// # Panics
///
/// Panics for [`TmKind::Glock`]: see [`INTERLEAVABLE_TMS`].
pub fn claim4(tm: TmKind, i: usize, l: usize) -> ProofExecution {
    assert!(i >= 2 && l < i - 1, "Claim 4 needs l < i-1");
    assert!(
        INTERLEAVABLE_TMS.contains(&tm),
        "{}: the Claim 4 interleaving is not producible on a blocking TM",
        tm.name()
    );
    let mut h = TmHarness::new(2, |b| tm.install(b, i));
    let (reader, writer) = (ProcessId::new(0), ProcessId::new(1));
    h.begin(reader);
    for x in 0..i - 1 {
        let (res, _) = h.read(reader, TObjId::new(x));
        assert_eq!(res, TOpResult::Value(0));
    }
    // β^ℓ: T_ℓ overwrites an item T_φ already read.
    h.run_writer(writer, &[(TObjId::new(l), NEW_VALUE + 1)]);
    // ρ^i: T_i writes X_i.
    h.run_writer(writer, &[(TObjId::new(i - 1), NEW_VALUE)]);
    // α_i: T_φ's i-th read.
    let (last, _) = h.read(reader, TObjId::new(i - 1));
    if last != TOpResult::Aborted {
        let (_, _) = h.try_commit(reader);
    }
    h.stop_all();
    finish("Claim 4", tm, last, h.history())
}

fn finish(name: &str, tm: TmKind, final_read: TOpResult, history: History) -> ProofExecution {
    ProofExecution {
        name: format!("{name} [{}]", tm.name()),
        final_read,
        opaque: is_opaque(&history),
        strictly_serializable: is_strictly_serializable(&history),
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_core::ALL_TMS;

    #[test]
    fn figure1a_returns_new_value_for_all_tms() {
        for &tm in ALL_TMS {
            let e = figure1a(tm, 4);
            assert_eq!(e.final_read, TOpResult::Value(NEW_VALUE), "{}", e.name);
            assert!(e.opaque, "{}", e.name);
        }
    }

    #[test]
    fn figure1b_lemma2_for_interleavable_tms() {
        // Lemma 2 is stated for weak-DAP TMs; remarkably the non-DAP TMs
        // in our suite also return the new value here *except* TL2, whose
        // snapshot time predates the writer — it aborts instead (which
        // Lemma 2 does not forbid for non-DAP TMs).
        for &tm in INTERLEAVABLE_TMS {
            let e = figure1b(tm, 4);
            match tm {
                TmKind::Tl2 => assert_eq!(e.final_read, TOpResult::Aborted, "{}", e.name),
                _ => assert_eq!(e.final_read, TOpResult::Value(NEW_VALUE), "{}", e.name),
            }
            assert!(e.opaque, "{}", e.name);
            assert!(e.strictly_serializable, "{}", e.name);
        }
    }

    #[test]
    fn claim4_never_returns_new_value() {
        for &tm in INTERLEAVABLE_TMS {
            let e = claim4(tm, 4, 1);
            assert_ne!(e.final_read, TOpResult::Value(NEW_VALUE), "{}", e.name);
            assert!(e.opaque, "{}", e.name);
        }
    }

    #[test]
    #[should_panic(expected = "not producible on a blocking TM")]
    fn figure1b_rejects_the_blocking_tm() {
        let _ = figure1b(TmKind::Glock, 4);
    }

    #[test]
    fn claim4_progressive_aborts() {
        // Incremental validation detects the stale X_l: the read aborts.
        let e = claim4(TmKind::Progressive, 5, 2);
        assert_eq!(e.final_read, TOpResult::Aborted);
    }

    #[test]
    fn trace_is_readable() {
        let e = figure1b(TmKind::Progressive, 3);
        let t = e.trace();
        assert!(t.contains("read(X2) -> 42"), "trace:\n{t}");
        assert!(t.contains("write(X2,42) -> ok"), "trace:\n{t}");
    }
}
