//! Markdown table rendering and power-law fitting for experiment output.

use std::fmt::Write as _;

/// A printable experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n### {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&dashes, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Least-squares slope of `ln(y)` against `ln(x)`: the exponent `k` of the
/// best-fit power law `y ≈ c·x^k`. Points with `y == 0` are skipped.
pub fn power_law_exponent(points: &[(f64, f64)]) -> f64 {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = logs.len() as f64;
    if logs.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = logs.iter().map(|(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("demo", &["m", "steps"]);
        t.push(vec!["2".into(), "10".into()]);
        t.push(vec!["4".into(), "100".into()]);
        let s = t.render();
        assert!(s.contains("### demo"));
        assert!(s.contains("| m | steps |"), "got:\n{s}");
        assert!(s.contains("| 4 |   100 |"), "got:\n{s}");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_is_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn exponent_of_quadratic_is_two() {
        let pts: Vec<(f64, f64)> = (1..=6).map(|m| (m as f64, (3 * m * m) as f64)).collect();
        let k = power_law_exponent(&pts);
        assert!((k - 2.0).abs() < 0.01, "k = {k}");
    }

    #[test]
    fn exponent_of_linear_is_one() {
        let pts: Vec<(f64, f64)> = (1..=6).map(|m| (m as f64, (7 * m) as f64)).collect();
        let k = power_law_exponent(&pts);
        assert!((k - 1.0).abs() < 0.01, "k = {k}");
    }

    #[test]
    fn degenerate_fit_is_nan() {
        assert!(power_law_exponent(&[(1.0, 1.0)]).is_nan());
        assert!(power_law_exponent(&[]).is_nan());
    }
}
