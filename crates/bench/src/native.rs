//! E11/E12 — native-STM microbenchmarks with a JSON baseline.
//!
//! Measures the six native algorithms on real threads and emits
//! `BENCH_native_stm.json` so successive PRs can compare read-path
//! throughput against a recorded baseline:
//!
//! * `read_only_txn/<algo>/<m>` — wall-clock cost of a read-only
//!   transaction over `m` TVars: the hardware echo of Theorem 3(1)
//!   (incremental mode scales quadratically, TL2/NOrec linearly);
//! * `thread_scaling_{read_mostly,write_mixed}/<algo>/<threads>` — a
//!   **fixed** total workload split across a 1→8 thread ladder, the
//!   direct scalability picture of the hot path (see
//!   [`bench_thread_scaling`]);
//! * `read_scaling/<algo>/<threads>` — concurrent read-only scans of a
//!   shared array: the payoff of the lock-free read path (the seed's
//!   mutex-per-read design serialized here);
//! * `read_mostly/<algo>/<threads>` — the paper's time–space tradeoff,
//!   measured: a read-dominated mix (16-variable scans, every 8th
//!   transaction also writes) contrasting Tlrw's O(1) visible reads
//!   against Tl2's snapshot validation and Incremental's quadratic
//!   re-validation across a thread ladder;
//! * `counter_increment/<algo>` — uncontended update-transaction latency;
//! * `bank_contended/<algo>` — 4 threads hammering 8 accounts:
//!   end-to-end throughput with retries (E12);
//! * `long_scan/<algo>/<writers>` — the multi-version experiment: large
//!   read-only scans (every variable of a 256-slot array) racing a
//!   blind-writer ladder. `Algorithm::Mv` is the acceptance picture:
//!   its scans resolve against start-time snapshots, so the
//!   `long_scan_ro_aborts` and `long_scan_probes` companion rows are 0
//!   while every single-version algorithm pays retries
//!   (`long_scan_aborts`, `long_scan_ro_aborts`) or validation probes
//!   under the same storm;
//! * `blocking_queue*/<algo>` — the parking-tier experiment: a
//!   producer/consumer pipeline over `ptm_structs::TQueue`, consumers
//!   either *blocking* (`dequeue_wait`, parked on the queue's stripes)
//!   or *polling* (`dequeue` in a hot re-run loop). The throughput pair
//!   (`blocking_queue` vs `polling_queue`) shows parking costs nothing
//!   while the queue is non-empty; the idle pair
//!   (`{blocking,polling}_queue_idle_work`, ops = commits + aborts +
//!   validation probes + reads accumulated while consumers face an
//!   *empty* queue for a fixed window) is the CPU-waste picture — ≈ 0
//!   parked, thousands polling — and `blocking_queue_idle_parks`
//!   confirms the consumers really were parked rather than lucky;
//! * `phase_shift_*/<algo>` — the adaptive-runtime experiment: one
//!   shared instance driven through `read_mostly → write_heavy →
//!   read_mostly` phases, each phase timed separately. The acceptance
//!   picture is `Algorithm::Adaptive` tracking the best static
//!   algorithm per phase (invisible Tl2 on the scans, visible Tlrw on
//!   the transfers) within its controller's switching lag; the
//!   `phase_shift_mode_transitions` row records (in `ops`) how many
//!   switches the adaptive controller performed across the three
//!   measured phases — at least one per phase boundary when adapting.
//! * `phase_scan_*/<algo>` — the **three-mode** adaptive experiment:
//!   one shared instance driven through `scan_heavy → write_heavy →
//!   mixed` phases. The scan-heavy phase (full-array read-only scans
//!   racing one blind writer) routes Adaptive into multiversion mode,
//!   the transfer phase into visible mode, the mixed tail back to
//!   invisible — the acceptance picture is Adaptive at or above the
//!   best static algorithm per phase, with the
//!   `phase_scan_mode_transitions` row ≥ 2 and the
//!   `phase_scan_snapshot_reads` row > 0 as proof the route really went
//!   through Mv;
//! * `long_scan_camped/mv/<chain>` — the skip-pointer experiment: a
//!   camped reader pins its snapshot, nested commits grow every version
//!   chain to `<chain>` links above it, and the camper then re-scans at
//!   its old snapshot. The companion `long_scan_camped_walk_steps` row
//!   carries the engine's `chain_walk_steps` counter: with the
//!   Fenwick-shaped skip links the steps per read grow ~log²(chain),
//!   not linearly, so doubling `<chain>` barely moves the row.
//!
//! The harness is deliberately criterion-free (the build environment is
//! offline): fixed-size workloads, wall-clock timing, one warmup run.
//! Every multi-instance family runs its passes interleaved across
//! algorithms, best of [`PHASE_PASSES`], so bursty background load hits
//! all algorithms alike instead of whichever one owned the noisy window.
//! Rows whose `threads` exceed the machine's hardware threads are marked
//! `"oversubscribed": true` in the JSON (and summarized in a warning):
//! their timings measure the scheduler, not the algorithm.

use ptm_stm::{Algorithm, Stm, TVar};
use ptm_structs::TQueue;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The algorithms under measurement, with their report names.
pub const ALGOS: &[(&str, Algorithm)] = &[
    ("tl2", Algorithm::Tl2),
    ("incremental", Algorithm::Incremental),
    ("norec", Algorithm::Norec),
    ("tlrw", Algorithm::Tlrw),
    ("mv", Algorithm::Mv),
    ("adaptive", Algorithm::Adaptive),
];

/// Canonical location of a baseline file: the workspace root, regardless
/// of the working directory `cargo bench` or `cargo run` chose (bench
/// targets run from the package directory, binaries from wherever the
/// user stands — the two used to scatter duplicate `BENCH_*.json`
/// files). The root is found at runtime by walking up from the current
/// directory to the nearest ancestor holding a `Cargo.lock`, so a moved
/// or copied checkout still writes next to its own code; out-of-tree
/// invocations fall back to this crate's compile-time workspace.
pub fn baseline_path(file: &str) -> String {
    let mut dir = std::env::current_dir().ok();
    while let Some(d) = dir {
        // Only accept a root that is *this* workspace (its manifest
        // lists the bench crate), so running from inside some unrelated
        // Cargo project does not drop the baseline there.
        if d.join("Cargo.lock").exists()
            && std::fs::read_to_string(d.join("Cargo.toml"))
                .is_ok_and(|m| m.contains("crates/bench"))
        {
            return d.join(file).to_string_lossy().into_owned();
        }
        dir = d.parent().map(std::path::Path::to_path_buf);
    }
    format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"))
}

/// The native-STM baseline's canonical path (see [`baseline_path`]).
pub fn native_baseline_path() -> String {
    baseline_path("BENCH_native_stm.json")
}

/// Small deterministic PRNG (PCG-style LCG step) shared by the bench
/// workloads; seed it with the thread index for reproducible per-thread
/// streams.
pub fn next_rand(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// One algorithm's live state in a multi-instance bench family: report
/// name, shared instance, and its variable array.
type AlgoInstance = (&'static str, Arc<Stm>, Vec<TVar<u64>>);

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark family (`read_only_txn`, `counter_increment`, ...).
    pub name: String,
    /// Algorithm name (`tl2`, `incremental`, `norec`).
    pub algo: String,
    /// Read-set size, where applicable (0 otherwise).
    pub m: usize,
    /// Worker thread count.
    pub threads: usize,
    /// Committed transactions across all threads.
    pub ops: u64,
    /// Total wall-clock nanoseconds.
    pub nanos: u128,
}

impl BenchResult {
    /// Committed transactions per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.nanos == 0 {
            return f64::INFINITY;
        }
        self.ops as f64 * 1e9 / self.nanos as f64
    }
}

fn time<F: FnOnce()>(f: F) -> u128 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos()
}

/// Read-only transactions over `m` variables, single thread, for every
/// algorithm and every read-set size in `ms` — passes **interleaved
/// across algorithms** (pass k of every algorithm before pass k+1 of
/// any), best of [`PHASE_PASSES`], same bursty-neighbour reasoning as
/// [`bench_phase_shift`].
pub fn bench_read_only_family(
    algos: &[(&'static str, Algorithm)],
    ms: &[usize],
    txns: u64,
) -> Vec<BenchResult> {
    let mut out = Vec::new();
    for &m in ms {
        let instances: Vec<(&str, Stm, Vec<TVar<u64>>)> = algos
            .iter()
            .map(|&(name, algo)| {
                let vars: Vec<TVar<u64>> = (0..m).map(|_| TVar::new(1)).collect();
                (name, Stm::new(algo), vars)
            })
            .collect();
        let pass = |stm: &Stm, vars: &[TVar<u64>], txns: u64| {
            time(|| {
                for _ in 0..txns {
                    let sum = stm.atomically(|tx| {
                        let mut acc = 0u64;
                        for v in vars {
                            acc = acc.wrapping_add(tx.read(v)?);
                        }
                        Ok(acc)
                    });
                    assert_eq!(sum, m as u64);
                }
            })
        };
        for (_, stm, vars) in &instances {
            pass(stm, vars, txns / 10 + 1); // warmup
        }
        let mut best = vec![u128::MAX; instances.len()];
        for _pass in 0..PHASE_PASSES {
            for (i, (_, stm, vars)) in instances.iter().enumerate() {
                best[i] = best[i].min(pass(stm, vars, txns));
            }
        }
        for ((name, _, _), nanos) in instances.iter().zip(best) {
            out.push(BenchResult {
                name: "read_only_txn".into(),
                algo: (*name).into(),
                m,
                threads: 1,
                ops: txns,
                nanos,
            });
        }
    }
    out
}

/// Concurrent read-only scans of one shared array of `m` variables.
pub fn bench_read_scaling(
    algo: Algorithm,
    name: &str,
    m: usize,
    threads: usize,
    txns_per_thread: u64,
) -> BenchResult {
    let stm = Arc::new(Stm::new(algo));
    let vars: Vec<TVar<u64>> = (0..m).map(|_| TVar::new(1)).collect();
    let run = || {
        std::thread::scope(|s| {
            for _ in 0..threads {
                let stm = Arc::clone(&stm);
                let vars = vars.clone();
                s.spawn(move || {
                    for _ in 0..txns_per_thread {
                        let sum = stm.atomically(|tx| {
                            let mut acc = 0u64;
                            for v in &vars {
                                acc = acc.wrapping_add(tx.read(v)?);
                            }
                            Ok(acc)
                        });
                        assert_eq!(sum, m as u64);
                    }
                });
            }
        });
    };
    run(); // warmup
    let nanos = time(run);
    BenchResult {
        name: "read_scaling".into(),
        algo: name.into(),
        m,
        threads,
        ops: txns_per_thread * threads as u64,
        nanos,
    }
}

/// Read-mostly mix over one shared array: every transaction scans a
/// 16-variable window; every 8th transaction per thread also writes one
/// slot (the same value, so the scan invariant holds and the only
/// traffic is the synchronization itself). This is the paper's tradeoff
/// as a ladder: Tlrw pays an RMW per first-touch stripe but never
/// validates; Tl2 validates each read against its snapshot; Incremental
/// re-validates the whole read set per read.
pub fn bench_read_mostly(
    algo: Algorithm,
    name: &str,
    m: usize,
    threads: usize,
    txns_per_thread: u64,
) -> BenchResult {
    const WINDOW: usize = 16;
    let stm = Arc::new(Stm::new(algo));
    let vars: Vec<TVar<u64>> = (0..m).map(|_| TVar::new(1)).collect();
    let run = || {
        std::thread::scope(|s| {
            for t in 0..threads {
                let stm = Arc::clone(&stm);
                let vars = vars.clone();
                s.spawn(move || {
                    let mut seed = t as u64 + 1;
                    for i in 0..txns_per_thread {
                        let start = next_rand(&mut seed) as usize % m;
                        let writing = i % 8 == 7;
                        let sum = stm.atomically(|tx| {
                            let mut acc = 0u64;
                            for k in 0..WINDOW {
                                acc = acc.wrapping_add(tx.read(&vars[(start + k) % m])?);
                            }
                            if writing {
                                tx.write(&vars[start], 1)?;
                            }
                            Ok(acc)
                        });
                        assert_eq!(sum, WINDOW as u64);
                    }
                });
            }
        });
    };
    run(); // warmup
    let nanos = time(run);
    BenchResult {
        name: "read_mostly".into(),
        algo: name.into(),
        m,
        threads,
        ops: txns_per_thread * threads as u64,
        nanos,
    }
}

/// Passes per phase: the first pass of each phase absorbs an adaptive
/// instance's switching lag and the best pass rejects scheduler noise,
/// so the reported number is the steady-state cost of the mode the
/// algorithm (or controller) runs that phase in.
pub const PHASE_PASSES: usize = 5;

/// One timed pass of the read-mostly phase shape: 32-variable scans,
/// every 8th transaction also writes one slot. Public so demos (e.g.
/// `examples/adaptive.rs`) drive the *same* workload the baseline
/// measures. Returns elapsed nanoseconds.
pub fn pass_read_mostly(stm: &Arc<Stm>, vars: &[TVar<u64>], threads: usize, txns: u64) -> u128 {
    const WINDOW: usize = 32;
    let m = vars.len();
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let stm = Arc::clone(stm);
            let vars = vars.to_vec();
            s.spawn(move || {
                let mut seed = t as u64 + 1;
                for i in 0..txns {
                    let base = next_rand(&mut seed) as usize % m;
                    let writing = i % 8 == 7;
                    let sum = stm.atomically(|tx| {
                        let mut acc = 0u64;
                        for k in 0..WINDOW {
                            acc = acc.wrapping_add(tx.read(&vars[(base + k) % m])?);
                        }
                        if writing {
                            tx.write(&vars[base], 1)?;
                        }
                        Ok(acc)
                    });
                    assert_eq!(sum, WINDOW as u64);
                }
            });
        }
    });
    start.elapsed().as_nanos()
}

/// One timed pass of the write-heavy phase shape (2-read / 2-write
/// transfers). Public for the same reason as [`pass_read_mostly`].
/// Returns elapsed nanoseconds.
pub fn pass_write_heavy(stm: &Arc<Stm>, accounts: &[TVar<u64>], threads: usize, txns: u64) -> u128 {
    let m = accounts.len();
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let stm = Arc::clone(stm);
            let accounts = accounts.to_vec();
            s.spawn(move || {
                let mut seed = (t as u64 + 1) * 7919;
                for _ in 0..txns {
                    let r = next_rand(&mut seed);
                    let from = (r >> 20) as usize % m;
                    let to = (r >> 3) as usize % m;
                    if from == to {
                        continue;
                    }
                    stm.atomically(|tx| {
                        let a = tx.read(&accounts[from])?;
                        let b = tx.read(&accounts[to])?;
                        let amt = a.min(3);
                        tx.write(&accounts[from], a - amt)?;
                        tx.write(&accounts[to], b + amt)
                    });
                }
            });
        }
    });
    start.elapsed().as_nanos()
}

/// One algorithm's live state across the phase-shifting experiment.
struct PhaseInstance {
    name: &'static str,
    stm: Arc<Stm>,
    vars: Vec<TVar<u64>>,
    accounts: Vec<TVar<u64>>,
    /// Best (minimum) nanos per phase, filled in phase order.
    best: Vec<u128>,
}

/// The paper's tradeoff as a *runtime* decision: every algorithm's
/// instance is driven through `read_mostly → write_heavy → read_mostly`
/// phases, each phase timed as the best of `PHASE_PASSES` passes.
/// Static algorithms pay their fixed cost profile in every phase;
/// `Algorithm::Adaptive` re-decides per phase (invisible for the scans,
/// visible for the transfers) at the price of its controller overhead —
/// the switching lag of a few sampling windows lands in each phase's
/// first pass, which best-of excludes along with scheduler noise.
///
/// Passes are **interleaved across algorithms** (pass k of every
/// algorithm runs before pass k+1 of any): on a machine with bursty
/// background load, sequential per-algorithm runs would hand one
/// algorithm a quiet window and another a stolen CPU, and the comparison
/// would measure the neighbours, not the algorithms. Phase *order* per
/// instance is preserved, so the adaptive controller still experiences a
/// genuine workload shift.
///
/// Returns one result per phase plus, for every algorithm, a
/// `phase_shift_mode_transitions` row whose `ops` field is the number of
/// mode switches observed across the measured phases (0 for the static
/// algorithms, ≥ 2 for a healthy adaptive run).
pub fn bench_phase_shift(
    algos: &[(&'static str, Algorithm)],
    threads: usize,
    txns_per_thread: u64,
) -> Vec<BenchResult> {
    let mut instances: Vec<PhaseInstance> = algos
        .iter()
        .map(|&(name, algo)| PhaseInstance {
            name,
            stm: Arc::new(Stm::new(algo)),
            vars: (0..128).map(|_| TVar::new(1)).collect(),
            accounts: (0..16).map(|_| TVar::new(1_000_000)).collect(),
            best: Vec::new(),
        })
        .collect();
    // Warmup with a short read-mostly pass; for Adaptive this leaves the
    // engine where a fresh instance starts anyway (invisible mode).
    for inst in &instances {
        pass_read_mostly(&inst.stm, &inst.vars, threads, txns_per_thread / 10 + 1);
    }
    let before: Vec<_> = instances.iter().map(|i| i.stm.stats().snapshot()).collect();
    let phases: [(&str, bool); 3] = [
        ("phase_shift_read_mostly_1", false),
        ("phase_shift_write_heavy", true),
        ("phase_shift_read_mostly_2", false),
    ];
    for &(_, write_heavy) in &phases {
        for inst in &mut instances {
            inst.best.push(u128::MAX);
        }
        for _pass in 0..PHASE_PASSES {
            for inst in &mut instances {
                let nanos = if write_heavy {
                    pass_write_heavy(&inst.stm, &inst.accounts, threads, txns_per_thread)
                } else {
                    pass_read_mostly(&inst.stm, &inst.vars, threads, txns_per_thread)
                };
                let slot = inst.best.last_mut().expect("phase slot");
                *slot = (*slot).min(nanos);
            }
        }
    }
    let mut out = Vec::new();
    for (inst, before) in instances.iter().zip(&before) {
        for (p, &(label, write_heavy)) in phases.iter().enumerate() {
            out.push(BenchResult {
                name: label.into(),
                algo: inst.name.into(),
                m: if write_heavy {
                    inst.accounts.len()
                } else {
                    inst.vars.len()
                },
                threads,
                ops: txns_per_thread * threads as u64,
                nanos: inst.best[p],
            });
        }
        let delta = inst.stm.stats().snapshot().since(before);
        out.push(BenchResult {
            name: "phase_shift_mode_transitions".into(),
            algo: inst.name.into(),
            m: 0,
            threads,
            ops: delta.mode_transitions,
            nanos: inst.best.iter().sum(),
        });
    }
    out
}

/// One timed pass of the scan-heavy phase shape: every thread but one
/// runs full-array read-only scans while the remaining thread
/// blind-writes random slots (equal values, so the scan sum stays
/// invariant) until the scanners finish. The storm is what separates
/// the engines: multi-version scans resolve against start-time
/// snapshots and never retry, single-version scans revalidate or abort.
/// Returns elapsed nanoseconds.
pub fn pass_scan_heavy(stm: &Arc<Stm>, vars: &[TVar<u64>], threads: usize, txns: u64) -> u128 {
    let scanners = threads.saturating_sub(1).max(1);
    let done = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|s| {
        if threads > 1 {
            let stm = Arc::clone(stm);
            let vars = vars.to_vec();
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut seed = 0x5ca1ab1e;
                while done.load(Ordering::Relaxed) < scanners as u64 {
                    let j = next_rand(&mut seed) as usize % vars.len();
                    stm.atomically(|tx| tx.write(&vars[j], 1));
                }
            });
        }
        for _ in 0..scanners {
            let stm = Arc::clone(stm);
            let vars = vars.to_vec();
            let done = Arc::clone(&done);
            s.spawn(move || {
                for _ in 0..txns {
                    let sum = stm.atomically(|tx| {
                        let mut acc = 0u64;
                        for v in &vars {
                            acc = acc.wrapping_add(tx.read(v)?);
                        }
                        Ok(acc)
                    });
                    assert_eq!(sum, vars.len() as u64);
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    start.elapsed().as_nanos()
}

/// The *three-mode* runtime decision: every algorithm's instance is
/// driven through `scan_heavy → write_heavy → mixed` phases, each phase
/// timed as the best of [`PHASE_PASSES`] passes, interleaved across
/// algorithms (same bursty-neighbour reasoning as
/// [`bench_phase_shift`]). The scan-heavy phase is [`pass_scan_heavy`]
/// over 256 variables — long read-only scans under a blind-write storm,
/// the shape that routes Adaptive into **multiversion** mode; the
/// write-heavy phase is [`pass_write_heavy`] (routes it to visible);
/// the mixed tail is [`pass_read_mostly`] (routes it back to
/// invisible).
///
/// Besides the timing rows, two companion rows per algorithm carry the
/// controller's evidence in their `ops` field: `phase_scan_mode_transitions`
/// (≥ 2 for a healthy adaptive run, 0 for the statics) and
/// `phase_scan_snapshot_reads` (> 0 only if reads were actually served
/// by the multiversion hooks along the way).
pub fn bench_phase_scan(
    algos: &[(&'static str, Algorithm)],
    threads: usize,
    txns_per_thread: u64,
) -> Vec<BenchResult> {
    const SCAN_VARS: usize = 256;
    let mut instances: Vec<PhaseInstance> = algos
        .iter()
        .map(|&(name, algo)| PhaseInstance {
            name,
            stm: Arc::new(Stm::new(algo)),
            vars: (0..SCAN_VARS).map(|_| TVar::new(1)).collect(),
            accounts: (0..16).map(|_| TVar::new(1_000_000)).collect(),
            best: Vec::new(),
        })
        .collect();
    // Warmup with a short scan-heavy pass (absorbs first-touch costs;
    // an adaptive instance may already route into multiversion here).
    for inst in &instances {
        pass_scan_heavy(&inst.stm, &inst.vars, threads, txns_per_thread / 10 + 1);
    }
    let before: Vec<_> = instances.iter().map(|i| i.stm.stats().snapshot()).collect();
    let phases = [
        "phase_scan_scan_heavy",
        "phase_scan_write_heavy",
        "phase_scan_mixed",
    ];
    for (p, _) in phases.iter().enumerate() {
        for inst in &mut instances {
            inst.best.push(u128::MAX);
        }
        for _pass in 0..PHASE_PASSES {
            for inst in &mut instances {
                let nanos = match p {
                    0 => pass_scan_heavy(&inst.stm, &inst.vars, threads, txns_per_thread),
                    1 => pass_write_heavy(&inst.stm, &inst.accounts, threads, txns_per_thread),
                    _ => pass_read_mostly(&inst.stm, &inst.vars, threads, txns_per_thread),
                };
                let slot = inst.best.last_mut().expect("phase slot");
                *slot = (*slot).min(nanos);
            }
        }
    }
    let scanners = threads.saturating_sub(1).max(1);
    let mut out = Vec::new();
    for (inst, before) in instances.iter().zip(&before) {
        for (p, label) in phases.iter().enumerate() {
            out.push(BenchResult {
                name: (*label).into(),
                algo: inst.name.into(),
                m: if p == 1 {
                    inst.accounts.len()
                } else {
                    inst.vars.len()
                },
                threads,
                ops: txns_per_thread * (if p == 0 { scanners } else { threads }) as u64,
                nanos: inst.best[p],
            });
        }
        let delta = inst.stm.stats().snapshot().since(before);
        let total: u128 = inst.best.iter().sum();
        for (label, ops) in [
            ("phase_scan_mode_transitions", delta.mode_transitions),
            ("phase_scan_snapshot_reads", delta.snapshot_reads),
        ] {
            out.push(BenchResult {
                name: label.into(),
                algo: inst.name.into(),
                m: 0,
                threads,
                ops,
                nanos: total,
            });
        }
    }
    out
}

/// Scan length (and variable count) of the `long_scan` experiment.
const LONG_SCAN_VARS: usize = 256;

/// Reader threads of the `long_scan` experiment (the ladder varies the
/// writers).
const LONG_SCAN_READERS: usize = 2;

/// One algorithm's live state across the long-scan experiment: a fresh
/// instance per writer rung, with best-of-pass timing and cumulative
/// reader-side abort accounting.
struct ScanInstance {
    name: &'static str,
    stm: Arc<Stm>,
    vars: Vec<TVar<u64>>,
    best: u128,
    ro_aborts: u64,
}

/// One timed pass of the long-scan shape for one instance: `writers`
/// blind-writer threads storm the array (equal-value writes, so the scan
/// sum stays invariant and the only traffic is the synchronization
/// itself) while each reader completes `txns` full-array read-only
/// scans. Returns `(reader nanos, reader aborts)`.
fn pass_long_scan(inst: &ScanInstance, writers: usize, txns: u64) -> (u128, u64) {
    // Writers storm until the last reader reports in.
    let readers_done = Arc::new(AtomicU64::new(0));
    let aborts = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..writers {
            let stm = Arc::clone(&inst.stm);
            let vars = inst.vars.clone();
            let readers_done = Arc::clone(&readers_done);
            s.spawn(move || {
                let mut seed = w as u64 + 1;
                while readers_done.load(Ordering::Relaxed) < LONG_SCAN_READERS as u64 {
                    let j = next_rand(&mut seed) as usize % vars.len();
                    // Blind write: no read set, so writer commits add no
                    // validation probes and the probe counter isolates
                    // the read-only side.
                    stm.atomically(|tx| tx.write(&vars[j], 1));
                }
            });
        }
        for _ in 0..LONG_SCAN_READERS {
            let stm = Arc::clone(&inst.stm);
            let vars = inst.vars.clone();
            let (readers_done, aborts) = (Arc::clone(&readers_done), Arc::clone(&aborts));
            s.spawn(move || {
                let mut attempts = 0u64;
                for _ in 0..txns {
                    let sum = stm.atomically(|tx| {
                        attempts += 1;
                        let mut acc = 0u64;
                        for v in vars.iter() {
                            acc = acc.wrapping_add(tx.read(v)?);
                        }
                        Ok(acc)
                    });
                    assert_eq!(sum, vars.len() as u64);
                }
                aborts.fetch_add(attempts - txns, Ordering::Relaxed);
                readers_done.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    (start.elapsed().as_nanos(), aborts.load(Ordering::Relaxed))
}

/// The multi-version experiment: large read-only scans (every variable
/// of a 256-slot array) racing a blind-writer ladder. Per writer rung,
/// every algorithm gets a fresh instance and the passes are
/// **interleaved across algorithms** (pass k of every algorithm before
/// pass k+1 of any — same bursty-neighbour reasoning as
/// [`bench_phase_shift`]), best-of-5 per rung.
///
/// Besides the timing rows, three companion rows per `(algo, writers)`
/// carry the storm's cost accounting in their `ops` field, accumulated
/// over all passes:
///
/// * `long_scan_ro_aborts` — retries the *read-only* scans paid
///   (attempts minus commits, counted reader-side). The multi-version
///   acceptance criterion: 0 for `mv`, whose snapshot reads cannot
///   abort.
/// * `long_scan_probes` — validation probes (writers are blind, so
///   every probe belongs to the read-only side). 0 for `mv` and the
///   never-validating `tlrw`.
/// * `long_scan_aborts` — instance-wide aborts including the writers'
///   lock conflicts; nonzero for every single-version algorithm under
///   the storm.
pub fn bench_long_scan(
    algos: &[(&'static str, Algorithm)],
    writer_ladder: &[usize],
    txns_per_reader: u64,
) -> Vec<BenchResult> {
    let mut out = Vec::new();
    for &writers in writer_ladder {
        let mut instances: Vec<ScanInstance> = algos
            .iter()
            .map(|&(name, algo)| ScanInstance {
                name,
                stm: Arc::new(Stm::new(algo)),
                vars: (0..LONG_SCAN_VARS).map(|_| TVar::new(1)).collect(),
                best: u128::MAX,
                ro_aborts: 0,
            })
            .collect();
        // Warmup pass (absorbs first-touch and, for adaptive, mode lag).
        for inst in &instances {
            pass_long_scan(inst, writers, txns_per_reader / 10 + 1);
        }
        let before: Vec<_> = instances.iter().map(|i| i.stm.stats().snapshot()).collect();
        for _pass in 0..PHASE_PASSES {
            for inst in &mut instances {
                let (nanos, ro_aborts) = pass_long_scan(inst, writers, txns_per_reader);
                inst.best = inst.best.min(nanos);
                inst.ro_aborts += ro_aborts;
            }
        }
        for (inst, before) in instances.iter().zip(&before) {
            let delta = inst.stm.stats().snapshot().since(before);
            let mut row = |name: &str, ops: u64, nanos: u128| {
                out.push(BenchResult {
                    name: name.into(),
                    algo: inst.name.into(),
                    m: LONG_SCAN_VARS,
                    threads: writers,
                    ops,
                    nanos,
                });
            };
            row(
                "long_scan",
                txns_per_reader * LONG_SCAN_READERS as u64,
                inst.best,
            );
            row("long_scan_ro_aborts", inst.ro_aborts, inst.best);
            row("long_scan_probes", delta.validation_probes, inst.best);
            row("long_scan_aborts", delta.aborts, inst.best);
        }
    }
    out
}

/// Variable count of the camped-reader experiment: small, so the chain
/// *length* — not the variable count — dominates each scan.
const CAMPED_VARS: usize = 8;

/// The skip-pointer experiment (`long_scan_camped/mv/<chain>`): a
/// multi-version reader pins its snapshot, then nested equal-value
/// commits grow every variable's version chain `chain` links above that
/// snapshot — the camper's own pin holds the low watermark down, so
/// nothing trims. The camper then re-reads the whole array `txns`
/// times; every read must descend from the chain head past all `chain`
/// newer versions to the pinned one. The timing row reports those
/// reads; the `long_scan_camped_walk_steps` companion row carries the
/// engine's `chain_walk_steps` counter over the same reads, the direct
/// evidence that the Fenwick-shaped skip links make the descent
/// ~log²(chain), not linear. Deterministic and single-threaded: the
/// ladder compares chain lengths, not schedulers.
pub fn bench_camped_scan(chain_lens: &[usize], txns: u64) -> Vec<BenchResult> {
    let mut out = Vec::new();
    for &chain in chain_lens {
        let stm = Arc::new(Stm::new(Algorithm::Mv));
        let vars: Vec<TVar<u64>> = (0..CAMPED_VARS).map(|_| TVar::new(1)).collect();
        let before = stm.stats().snapshot();
        let elapsed = std::cell::Cell::new(0u128);
        let grown = std::cell::Cell::new(false);
        stm.atomically(|tx| {
            // Pin the snapshot with one full scan.
            let mut acc = 0u64;
            for v in &vars {
                acc = acc.wrapping_add(tx.read(v)?);
            }
            assert_eq!(acc, CAMPED_VARS as u64);
            // Grow the chains under the camper's feet (once: a
            // multi-version read-only attempt never retries, and the
            // guard keeps a surprise re-run from doubling the chains).
            if !grown.get() {
                grown.set(true);
                for _ in 0..chain {
                    stm.atomically(|tx2| {
                        for v in &vars {
                            tx2.write(v, 1)?;
                        }
                        Ok(())
                    });
                }
            }
            let start = Instant::now();
            for _ in 0..txns {
                let mut sum = 0u64;
                for v in &vars {
                    sum = sum.wrapping_add(tx.read(v)?);
                }
                assert_eq!(sum, CAMPED_VARS as u64, "camped snapshot drifted");
            }
            elapsed.set(start.elapsed().as_nanos());
            Ok(())
        });
        let delta = stm.stats().snapshot().since(&before);
        let reads = txns * CAMPED_VARS as u64;
        for (label, ops) in [
            ("long_scan_camped", reads),
            ("long_scan_camped_walk_steps", delta.chain_walk_steps),
        ] {
            out.push(BenchResult {
                name: label.into(),
                algo: "mv".into(),
                m: chain,
                threads: 1,
                ops,
                nanos: elapsed.get(),
            });
        }
    }
    out
}

/// Uncontended single-thread counter increments.
pub fn bench_counter(algo: Algorithm, name: &str, txns: u64) -> BenchResult {
    let stm = Stm::new(algo);
    let v = TVar::new(0u64);
    let body = || {
        for _ in 0..txns {
            stm.atomically(|tx| {
                let x = tx.read(&v)?;
                tx.write(&v, x.wrapping_add(1))
            });
        }
    };
    body(); // warmup
    let nanos = time(body);
    BenchResult {
        name: "counter_increment".into(),
        algo: name.into(),
        m: 1,
        threads: 1,
        ops: txns,
        nanos,
    }
}

/// Contended bank transfers: `threads` threads, 8 accounts, for every
/// algorithm — passes **interleaved across algorithms**, best of
/// [`PHASE_PASSES`] (same bursty-neighbour reasoning as
/// [`bench_phase_shift`]), with conservation asserted after every pass.
pub fn bench_bank_family(
    algos: &[(&'static str, Algorithm)],
    threads: usize,
    txns_per_thread: u64,
) -> Vec<BenchResult> {
    const ACCOUNTS: usize = 8;
    let instances: Vec<AlgoInstance> = algos
        .iter()
        .map(|&(name, algo)| {
            let accounts: Vec<TVar<u64>> = (0..ACCOUNTS).map(|_| TVar::new(1_000)).collect();
            (name, Arc::new(Stm::new(algo)), accounts)
        })
        .collect();
    let pass = |stm: &Arc<Stm>, accounts: &[TVar<u64>], txns: u64| {
        let nanos = time(|| {
            std::thread::scope(|s| {
                for t in 0..threads {
                    let stm = Arc::clone(stm);
                    let accounts = accounts.to_vec();
                    s.spawn(move || {
                        let mut seed = t as u64 + 1;
                        for _ in 0..txns {
                            let r = next_rand(&mut seed);
                            let from = (r >> 22) as usize % accounts.len();
                            let to = (r >> 2) as usize % accounts.len();
                            if from == to {
                                continue;
                            }
                            stm.atomically(|tx| {
                                let a = tx.read(&accounts[from])?;
                                let b = tx.read(&accounts[to])?;
                                let amt = a.min(5);
                                tx.write(&accounts[from], a - amt)?;
                                tx.write(&accounts[to], b + amt)
                            });
                        }
                    });
                }
            });
        });
        let sum: u64 = accounts.iter().map(TVar::load).sum();
        assert_eq!(sum, (ACCOUNTS * 1_000) as u64, "conservation violated");
        nanos
    };
    for (_, stm, accounts) in &instances {
        pass(stm, accounts, txns_per_thread / 10 + 1); // warmup
    }
    let mut best = vec![u128::MAX; instances.len()];
    for _pass in 0..PHASE_PASSES {
        for (i, (_, stm, accounts)) in instances.iter().enumerate() {
            best[i] = best[i].min(pass(stm, accounts, txns_per_thread));
        }
    }
    instances
        .iter()
        .zip(best)
        .map(|((name, _, _), nanos)| BenchResult {
            name: "bank_contended".into(),
            algo: (*name).into(),
            m: ACCOUNTS,
            threads,
            ops: txns_per_thread * threads as u64,
            nanos,
        })
        .collect()
}

/// The scalability picture this engine's hot path is tuned for: a
/// **fixed** total amount of work (`total_txns` transactions) split
/// across a thread-count ladder, so a flat wall-clock line means perfect
/// scaling and each rung's throughput is directly comparable. Two
/// shapes per rung:
///
/// * `thread_scaling_read_mostly` — the [`pass_read_mostly`] workload
///   (32-variable scans over 128 slots, every 8th transaction writes):
///   dominated by the per-read cost, where instrumentation RMWs and
///   write-set scans would serialize otherwise-independent readers;
/// * `thread_scaling_write_mixed` — the [`pass_write_heavy`] workload
///   (2-read/2-write transfers over 32 accounts): dominated by commit
///   cost, where the global clock draw is the shared hotspot.
///
/// Fresh instances per rung, passes **interleaved across algorithms**,
/// best of [`PHASE_PASSES`] — same bursty-neighbour reasoning as
/// [`bench_phase_shift`].
pub fn bench_thread_scaling(
    algos: &[(&'static str, Algorithm)],
    ladder: &[usize],
    total_txns: u64,
) -> Vec<BenchResult> {
    const SCAN_VARS: usize = 128;
    const ACCOUNTS: usize = 32;
    let mut out = Vec::new();
    for &threads in ladder {
        let per_thread = total_txns / threads as u64;
        for (label, write_mixed) in [
            ("thread_scaling_read_mostly", false),
            ("thread_scaling_write_mixed", true),
        ] {
            let instances: Vec<AlgoInstance> = algos
                .iter()
                .map(|&(name, algo)| {
                    let vars: Vec<TVar<u64>> = if write_mixed {
                        (0..ACCOUNTS).map(|_| TVar::new(1_000_000)).collect()
                    } else {
                        (0..SCAN_VARS).map(|_| TVar::new(1)).collect()
                    };
                    (name, Arc::new(Stm::new(algo)), vars)
                })
                .collect();
            let pass = |stm: &Arc<Stm>, vars: &[TVar<u64>], txns: u64| {
                if write_mixed {
                    pass_write_heavy(stm, vars, threads, txns)
                } else {
                    pass_read_mostly(stm, vars, threads, txns)
                }
            };
            for (_, stm, vars) in &instances {
                pass(stm, vars, per_thread / 10 + 1); // warmup
            }
            let mut best = vec![u128::MAX; instances.len()];
            for _pass in 0..PHASE_PASSES {
                for (i, (_, stm, vars)) in instances.iter().enumerate() {
                    best[i] = best[i].min(pass(stm, vars, per_thread));
                }
            }
            for ((name, _, vars), nanos) in instances.iter().zip(best) {
                out.push(BenchResult {
                    name: label.into(),
                    algo: (*name).into(),
                    m: vars.len(),
                    threads,
                    ops: per_thread * threads as u64,
                    nanos,
                });
            }
        }
    }
    out
}

/// Sentinel telling a bench queue consumer to stop.
const QSTOP: u64 = u64::MAX;

/// Producer/consumer wall clock: 2 producers push `items` total, 2
/// consumers drain — blocking (`dequeue_wait`) or polling (`dequeue`
/// re-run on empty).
fn queue_throughput(stm: &Arc<Stm>, items: u64, blocking: bool) -> u128 {
    let q: TQueue<u64> = TQueue::new();
    time(|| {
        std::thread::scope(|s| {
            for _ in 0..2 {
                let (stm, q) = (Arc::clone(stm), q.clone());
                s.spawn(move || loop {
                    let v = if blocking {
                        stm.atomically(|tx| q.dequeue_wait(tx))
                    } else {
                        match stm.atomically(|tx| q.dequeue(tx)) {
                            Some(v) => v,
                            None => continue,
                        }
                    };
                    if v == QSTOP {
                        break;
                    }
                });
            }
            let producers: Vec<_> = (0..2u64)
                .map(|p| {
                    let (stm, q) = (Arc::clone(stm), q.clone());
                    s.spawn(move || {
                        for i in 0..items / 2 {
                            stm.atomically(|tx| q.enqueue(tx, p * items + i));
                        }
                    })
                })
                .collect();
            for h in producers {
                h.join().expect("producer");
            }
            for _ in 0..2 {
                stm.atomically(|tx| q.enqueue(tx, QSTOP));
            }
        });
    })
}

/// Transactional work (commits + aborts + validation probes + reads) two
/// consumers accumulate over an idle `window` against an **empty**
/// queue, plus the instance's park count: the CPU-waste comparison the
/// parking tier exists to win. Returns `(idle_work, parks)`.
fn queue_idle_work(stm: &Arc<Stm>, blocking: bool, window: Duration) -> (u64, u64) {
    let q: TQueue<u64> = TQueue::new();
    let stop = Arc::new(AtomicBool::new(false));
    let mut measured = (0, 0);
    std::thread::scope(|s| {
        for _ in 0..2 {
            let (stm, q, stop) = (Arc::clone(stm), q.clone(), Arc::clone(&stop));
            s.spawn(move || {
                if blocking {
                    while stm.atomically(|tx| q.dequeue_wait(tx)) != QSTOP {}
                } else {
                    while !stop.load(Ordering::Relaxed) {
                        let _ = stm.atomically(|tx| q.dequeue(tx));
                    }
                }
            });
        }
        // Let the consumers reach their steady state (parked, for the
        // blocking pair) before opening the measurement window.
        std::thread::sleep(Duration::from_millis(30));
        let before = stm.stats().snapshot();
        std::thread::sleep(window);
        let idle = stm.stats().snapshot().since(&before);
        measured = (
            idle.commits + idle.aborts + idle.validation_probes + idle.reads,
            stm.stats().snapshot().parks,
        );
        stop.store(true, Ordering::Relaxed);
        if blocking {
            for _ in 0..2 {
                stm.atomically(|tx| q.enqueue(tx, QSTOP));
            }
        }
    });
    measured
}

/// The `blocking_queue` family (see the module docs): throughput pair,
/// idle-waste pair, park-count row, per algorithm.
pub fn bench_blocking_queue_family(
    algos: &[(&'static str, Algorithm)],
    quick: bool,
) -> Vec<BenchResult> {
    let items: u64 = if quick { 2_000 } else { 20_000 };
    let idle_window = Duration::from_millis(if quick { 20 } else { 100 });
    let mut out = Vec::new();
    for &(name, algo) in algos {
        for (label, blocking) in [("blocking_queue", true), ("polling_queue", false)] {
            let stm = Arc::new(Stm::new(algo));
            let nanos = queue_throughput(&stm, items, blocking);
            out.push(BenchResult {
                name: label.into(),
                algo: name.into(),
                m: 0,
                threads: 4,
                ops: items,
                nanos,
            });
        }
        for (label, blocking) in [
            ("blocking_queue_idle_work", true),
            ("polling_queue_idle_work", false),
        ] {
            let stm = Arc::new(Stm::new(algo));
            let (work, parks) = queue_idle_work(&stm, blocking, idle_window);
            out.push(BenchResult {
                name: label.into(),
                algo: name.into(),
                m: 0,
                threads: 2,
                ops: work,
                nanos: idle_window.as_nanos(),
            });
            if blocking {
                out.push(BenchResult {
                    name: "blocking_queue_idle_parks".into(),
                    algo: name.into(),
                    m: 0,
                    threads: 2,
                    ops: parks,
                    nanos: idle_window.as_nanos(),
                });
            }
        }
    }
    out
}

/// Runs the full suite. `quick` shrinks every workload for CI.
pub fn run_all(quick: bool) -> Vec<BenchResult> {
    let mut out = Vec::new();
    let read_txns: u64 = if quick { 300 } else { 5_000 };
    let counter_txns: u64 = if quick { 5_000 } else { 200_000 };
    let bank_txns: u64 = if quick { 500 } else { 5_000 };
    let scale_txns: u64 = if quick { 200 } else { 2_000 };

    out.extend(bench_read_only_family(ALGOS, &[16, 64, 256], read_txns));
    for &(name, algo) in ALGOS {
        for threads in [1usize, 2, 4, 8] {
            out.push(bench_read_scaling(algo, name, 128, threads, scale_txns));
        }
    }
    for &(name, algo) in ALGOS {
        for threads in [1usize, 2, 4, 8] {
            out.push(bench_read_mostly(algo, name, 128, threads, scale_txns));
        }
    }
    for &(name, algo) in ALGOS {
        out.push(bench_counter(algo, name, counter_txns));
    }
    out.extend(bench_bank_family(ALGOS, 4, bank_txns));
    let phase_txns: u64 = if quick { 2_500 } else { 25_000 };
    out.extend(bench_phase_shift(ALGOS, 4, phase_txns));
    // Quick mode shrinks the phase_scan ladder (fewer scans per phase,
    // shorter camped chains) so CI stays fast while still crossing the
    // controller's windows in every phase.
    let phase_scan_txns: u64 = if quick { 300 } else { 3_000 };
    out.extend(bench_phase_scan(ALGOS, 4, phase_scan_txns));
    let camped_ladder: &[usize] = if quick { &[64, 256] } else { &[64, 256, 1024] };
    out.extend(bench_camped_scan(
        camped_ladder,
        if quick { 100 } else { 400 },
    ));
    let scan_txns: u64 = if quick { 60 } else { 400 };
    out.extend(bench_long_scan(ALGOS, &[1, 2, 4], scan_txns));
    out.extend(bench_blocking_queue_family(ALGOS, quick));
    out.extend(run_thread_scaling(quick));
    out
}

/// The `thread_scaling` families alone (also reachable through the
/// binary's `--thread-scaling` flag, for before/after engine
/// comparisons). `quick` shrinks the ladder to its endpoints.
pub fn run_thread_scaling(quick: bool) -> Vec<BenchResult> {
    let total: u64 = if quick { 2_000 } else { 16_000 };
    let ladder: &[usize] = if quick { &[1, 8] } else { &[1, 2, 4, 8] };
    bench_thread_scaling(ALGOS, ladder, total)
}

/// Renders results as an aligned text table.
pub fn render_table(results: &[BenchResult]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<28} {:>12} {:>5} {:>8} {:>12} {:>14}\n",
        "bench", "algo", "m", "threads", "ops", "ops/sec"
    ));
    for r in results {
        s.push_str(&format!(
            "{:<28} {:>12} {:>5} {:>8} {:>12} {:>14.0}\n",
            r.name,
            r.algo,
            r.m,
            r.threads,
            r.ops,
            r.ops_per_sec()
        ));
    }
    s
}

/// Serializes results as the `BENCH_native_stm.json` baseline document.
pub fn to_json(results: &[BenchResult], quick: bool) -> String {
    to_json_named("native_stm", results, quick)
}

/// Serializes results as a baseline document under an arbitrary bench
/// family name (shared by the `structs` suite).
pub fn to_json_named(bench: &str, results: &[BenchResult], quick: bool) -> String {
    let hw = available_threads();
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"hardware_threads\": {hw},\n"));
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        // Rows that asked for more workers than the machine has measure
        // the scheduler, not the algorithm: flag them so baseline
        // comparisons can discount (or reject) them.
        let over = if r.threads > hw {
            ", \"oversubscribed\": true"
        } else {
            ""
        };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"algo\": \"{}\", \"m\": {}, \"threads\": {}, \"ops\": {}, \"nanos\": {}, \"ops_per_sec\": {:.1}{over}}}{sep}\n",
            r.name, r.algo, r.m, r.threads, r.ops, r.nanos, r.ops_per_sec()
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Full entry point shared by the bench target and the binary: run,
/// print, and write the JSON baseline to `path`.
pub fn run_and_emit(quick: bool, path: &str) {
    eprintln!(
        "running native STM benchmarks ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let results = run_all(quick);
    print!("{}", render_table(&results));
    let hw = available_threads();
    let over = results.iter().filter(|r| r.threads > hw).count();
    if over > 0 {
        eprintln!(
            "warning: {over} result rows ran oversubscribed (threads > {hw} \
             hardware threads); their timings measure scheduling, not the \
             algorithm, and are flagged \"oversubscribed\" in the JSON"
        );
    }
    let json = to_json(&results, quick);
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("baseline written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_path_resolves_to_this_workspace_root() {
        // Under `cargo test` the CWD is the package dir; the walk-up
        // must land on the workspace root (which holds the bench crate),
        // not merely the nearest Cargo.lock of whatever project.
        let p = std::path::PathBuf::from(baseline_path("PROBE.json"));
        assert_eq!(p.file_name().unwrap(), "PROBE.json");
        let root = p.parent().unwrap();
        assert!(root.join("Cargo.lock").exists(), "{}", root.display());
        assert!(root.join("crates/bench").is_dir(), "{}", root.display());
        assert_eq!(
            native_baseline_path(),
            root.join("BENCH_native_stm.json").to_string_lossy()
        );
    }

    #[test]
    fn blocking_consumers_idle_far_cheaper_than_polling() {
        // The acceptance picture in miniature: over the same idle window
        // against an empty queue, parked consumers must do (almost) no
        // transactional work while polling consumers churn.
        let window = Duration::from_millis(50);
        let parked_stm = Arc::new(Stm::tl2());
        let (parked_work, parks) = queue_idle_work(&parked_stm, true, window);
        let polling_stm = Arc::new(Stm::tl2());
        let (polling_work, _) = queue_idle_work(&polling_stm, false, window);
        assert!(parks >= 2, "both consumers should have parked ({parks})");
        assert!(
            polling_work >= 100,
            "polling should churn visibly ({polling_work})"
        );
        assert!(
            parked_work * 10 < polling_work,
            "parked idle work ({parked_work}) must be an order of magnitude \
             below polling ({polling_work})"
        );
    }

    #[test]
    fn phase_shift_reports_adaptive_transitions() {
        // Enough commits per phase for several default sampling windows:
        // the adaptive run must record at least one switch, the static
        // run exactly zero.
        let rows = bench_phase_shift(
            &[("adaptive", Algorithm::Adaptive), ("tlrw", Algorithm::Tlrw)],
            2,
            1_500,
        );
        assert_eq!(rows.len(), 8, "3 phases + transitions, per algorithm");
        let trans = |algo: &str| {
            rows.iter()
                .find(|r| r.name == "phase_shift_mode_transitions" && r.algo == algo)
                .expect("transitions row")
                .ops
        };
        assert!(trans("adaptive") >= 1, "adaptive never switched");
        assert_eq!(
            trans("tlrw"),
            0,
            "static algorithms must report zero transitions"
        );
    }

    #[test]
    fn long_scan_isolates_the_multi_version_acceptance_counters() {
        // A short storm: mv scans must record zero read-only aborts and
        // zero probes, no matter the interleaving. The single-version
        // contrast in this unit test is incremental, whose per-read
        // revalidation probes are structural (every scan pays
        // m(m-1)/2), so the assertion cannot be starved by scheduling
        // the way storm-dependent tl2 aborts can; the storm-dependent
        // rows for all six algorithms land in BENCH_native_stm.json.
        let rows = bench_long_scan(
            &[
                ("mv", Algorithm::Mv),
                ("incremental", Algorithm::Incremental),
            ],
            &[2],
            40,
        );
        assert_eq!(rows.len(), 8, "4 rows per algorithm for one rung");
        let val = |name: &str, algo: &str| {
            rows.iter()
                .find(|r| r.name == name && r.algo == algo)
                .expect("row")
                .ops
        };
        assert_eq!(val("long_scan_ro_aborts", "mv"), 0, "mv readers abort-free");
        assert_eq!(val("long_scan_probes", "mv"), 0, "mv readers never probe");
        assert!(val("long_scan", "mv") > 0);
        assert!(
            val("long_scan_probes", "incremental") > 0,
            "a single-version engine must pay under the storm"
        );
    }

    #[test]
    fn phase_scan_routes_the_adaptive_instance_through_multiversion() {
        // Enough commits per phase for several default sampling windows:
        // the adaptive run must cross at least two modes and serve some
        // reads from the multiversion hooks; the static contrast must
        // report zero transitions.
        let rows = bench_phase_scan(
            &[("adaptive", Algorithm::Adaptive), ("tl2", Algorithm::Tl2)],
            2,
            400,
        );
        assert_eq!(rows.len(), 10, "3 phases + 2 companion rows, per algorithm");
        let val = |name: &str, algo: &str| {
            rows.iter()
                .find(|r| r.name == name && r.algo == algo)
                .expect("row")
                .ops
        };
        assert!(
            val("phase_scan_mode_transitions", "adaptive") >= 2,
            "adaptive never crossed two modes"
        );
        assert!(
            val("phase_scan_snapshot_reads", "adaptive") > 0,
            "no reads were served by the multiversion hooks"
        );
        assert_eq!(val("phase_scan_mode_transitions", "tl2"), 0);
        assert_eq!(val("phase_scan_snapshot_reads", "tl2"), 0);
    }

    #[test]
    fn camped_scan_walks_are_sublinear_in_chain_length() {
        // The skip-pointer acceptance picture in miniature: growing the
        // chain 16x (64 -> 1024) must leave the walk-steps-per-read far
        // below the linear count — a prev-only descent would pay ~1024
        // steps per read at the long rung.
        let rows = bench_camped_scan(&[64, 1024], 50);
        assert_eq!(rows.len(), 4, "timing + walk-steps row per rung");
        let of = |name: &str, chain: usize| {
            rows.iter()
                .find(|r| r.name == name && r.m == chain)
                .expect("row")
        };
        let per_read = |chain: usize| {
            let reads = of("long_scan_camped", chain).ops;
            let steps = of("long_scan_camped_walk_steps", chain).ops;
            assert!(reads > 0 && steps > 0);
            steps / reads
        };
        let (short, long) = (per_read(64), per_read(1024));
        assert!(
            long < 1024 / 4,
            "walks at chain 1024 look linear: {long} steps/read"
        );
        assert!(
            long < short * 8,
            "16x the chain must cost well under 16x the steps \
             (chain 64: {short}/read, chain 1024: {long}/read)"
        );
    }

    #[test]
    fn oversubscribed_rows_are_flagged_in_the_json() {
        let hw = available_threads();
        let row = |threads: usize| BenchResult {
            name: "probe".into(),
            algo: "tl2".into(),
            m: 0,
            threads,
            ops: 1,
            nanos: 1,
        };
        let json = to_json(&[row(1), row(hw + 1)], true);
        assert_eq!(json.matches("\"oversubscribed\": true").count(), 1);
        assert!(
            json.lines()
                .find(|l| l.contains(&format!("\"threads\": {}", hw + 1)))
                .expect("oversubscribed row")
                .contains("\"oversubscribed\": true"),
            "the flag must sit on the oversubscribed row"
        );
    }

    #[test]
    fn quick_suite_produces_complete_results() {
        let mut results = vec![
            bench_counter(Algorithm::Norec, "norec", 10),
            bench_read_scaling(Algorithm::Tl2, "tl2", 8, 2, 10),
            bench_read_mostly(Algorithm::Tlrw, "tlrw", 32, 2, 10),
            bench_read_mostly(Algorithm::Tl2, "tl2", 32, 2, 10),
        ];
        results.extend(bench_read_only_family(&[("tl2", Algorithm::Tl2)], &[8], 10));
        results.extend(bench_bank_family(&[("tl2", Algorithm::Tl2)], 2, 20));
        for r in &results {
            assert!(r.ops > 0);
            assert!(r.ops_per_sec() > 0.0);
        }
        let table = render_table(&results);
        assert!(table.contains("read_only_txn"));
        assert!(table.contains("bank_contended"));
        let json = to_json(&results, true);
        assert!(json.contains("\"bench\": \"native_stm\""));
        assert!(json.contains("\"quick\": true"));
        // The JSON must stay machine-parseable enough for a diff-based
        // baseline check: balanced braces, one result object per line.
        assert_eq!(json.matches("{\"name\"").count(), results.len());
    }

    #[test]
    fn thread_scaling_covers_the_ladder_with_fixed_work() {
        let rows = bench_thread_scaling(
            &[("tl2", Algorithm::Tl2), ("mv", Algorithm::Mv)],
            &[1, 2],
            40,
        );
        // 2 rungs × 2 shapes × 2 algorithms.
        assert_eq!(rows.len(), 8);
        for shape in ["thread_scaling_read_mostly", "thread_scaling_write_mixed"] {
            for algo in ["tl2", "mv"] {
                let of = |threads: usize| {
                    rows.iter()
                        .find(|r| r.name == shape && r.algo == algo && r.threads == threads)
                        .expect("row")
                };
                // Fixed total work: ops per rung match (total rounds
                // down to a per-thread share).
                assert_eq!(of(1).ops, 40);
                assert_eq!(of(2).ops, 40);
                assert!(of(1).nanos > 0 && of(2).nanos > 0);
            }
        }
    }
}
