//! Emits the `BENCH_service.json` baseline: YCSB-style workloads over
//! the sharded KV service, all six algorithms × shard counts, with
//! p50/p99 latency. `cargo run --release -p ptm-bench --bin
//! service-bench [-- --quick] [-- --out PATH]`; `--quick` shrinks the
//! sweep for CI smoke runs, without `--out` the canonical
//! workspace-root baseline is rewritten.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "quick");
    if args.iter().any(|a| a == "--durability-only") {
        // Iterating on the durability family (or a CI durability job)
        // without paying for the full algorithm sweep; table only, the
        // canonical baseline is not rewritten.
        let results = ptm_bench::service::bench_durability_family(quick);
        print!("{}", ptm_bench::service::render_table(&results));
        return;
    }
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(ptm_bench::service::service_baseline_path);
    ptm_bench::service::run_and_emit(quick, &out);
}
