//! Standalone runner for the native-STM benchmarks: `cargo run --release
//! -p ptm-bench --bin native-stm-bench [-- --quick] [-- --out PATH]`.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_native_stm.json");
    ptm_bench::native::run_and_emit(quick, out);
}
