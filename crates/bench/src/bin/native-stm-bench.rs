//! Standalone runner for the native-STM benchmarks: `cargo run --release
//! -p ptm-bench --bin native-stm-bench [-- --quick] [-- --out PATH]
//! [-- --thread-scaling]`; without `--out` the canonical workspace-root
//! baseline is rewritten. `--thread-scaling` runs only the
//! thread-scaling families and prints the table without touching the
//! baseline file (unless `--out` names one) — the shape before/after
//! engine comparisons want.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if args.iter().any(|a| a == "--thread-scaling") {
        let results = ptm_bench::native::run_thread_scaling(quick);
        print!("{}", ptm_bench::native::render_table(&results));
        if let Some(path) = out {
            let json = ptm_bench::native::to_json(&results, quick);
            match std::fs::write(&path, &json) {
                Ok(()) => eprintln!("results written to {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
        return;
    }
    let out = out.unwrap_or_else(ptm_bench::native::native_baseline_path);
    ptm_bench::native::run_and_emit(quick, &out);
}
