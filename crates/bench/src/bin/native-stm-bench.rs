//! Standalone runner for the native-STM benchmarks: `cargo run --release
//! -p ptm-bench --bin native-stm-bench [-- --quick] [-- --out PATH]`;
//! without `--out` the canonical workspace-root baseline is rewritten.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(ptm_bench::native::native_baseline_path);
    ptm_bench::native::run_and_emit(quick, &out);
}
