//! Binary entry point for the paper tables:
//! `cargo run --release -p ptm-bench --bin paper-tables [--quick]`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    ptm_bench::print_all_tables(quick);
}
