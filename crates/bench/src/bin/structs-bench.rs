//! Standalone runner for the data-structure benchmarks: `cargo run
//! --release -p ptm-bench --bin structs-bench [-- --quick] [-- --out PATH]`.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_structs.json");
    ptm_bench::structs::run_and_emit(quick, out);
}
