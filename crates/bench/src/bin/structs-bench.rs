//! Standalone runner for the data-structure benchmarks: `cargo run
//! --release -p ptm-bench --bin structs-bench [-- --quick] [-- --out PATH]`;
//! without `--out` the canonical workspace-root baseline is rewritten.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(ptm_bench::structs::structs_baseline_path);
    ptm_bench::structs::run_and_emit(quick, &out);
}
