//! E4 — Theorem 3(2): distinct base objects accessed during the last
//! t-read and `tryC` of a read-only transaction.
//!
//! Same workload as E3; measured quantity is the *space* footprint of the
//! final read + commit. The theorem says a weak-DAP TM with weak invisible
//! reads must touch at least `m − 1` distinct base objects there;
//! `ir-progressive` matches it (the m-th read validates `m − 1` version
//! words plus the value cell), while the ablations that drop a hypothesis
//! stay O(1).

use crate::table::Table;
use ptm_core::{TmHarness, TmKind, ALL_TMS};
use ptm_sim::{ProcessId, TObjId, TOpResult};

/// Measurement of the last read + tryC footprint.
#[derive(Debug, Clone, Copy)]
pub struct SpaceRun {
    /// The TM measured.
    pub tm: TmKind,
    /// Read-set size.
    pub m: usize,
    /// Distinct base objects accessed during the m-th read.
    pub last_read_objects: usize,
    /// Distinct base objects accessed during tryC.
    pub commit_objects: usize,
}

impl SpaceRun {
    /// Distinct objects across the last read and tryC, summed (the two
    /// fragments may overlap, so this is an upper bound on the union —
    /// for the lower-bound comparison the last read alone suffices).
    pub fn footprint(&self) -> usize {
        self.last_read_objects + self.commit_objects
    }
}

/// Runs the E4 workload for one TM and read-set size.
pub fn run_space(tm: TmKind, m: usize) -> SpaceRun {
    let mut h = TmHarness::new(2, |b| tm.install(b, m));
    let writer = ProcessId::new(1);
    let reader = ProcessId::new(0);
    for i in 0..m {
        h.run_writer(writer, &[(TObjId::new(i), 7)]);
    }
    h.begin(reader);
    let mut last_cost = Default::default();
    for i in 0..m {
        let (res, cost) = h.read(reader, TObjId::new(i));
        assert_eq!(
            res,
            TOpResult::Value(7),
            "{}: solo read must succeed",
            tm.name()
        );
        last_cost = cost;
    }
    let (res, commit_cost) = h.try_commit(reader);
    assert_eq!(res, TOpResult::Committed);
    h.stop_all();
    SpaceRun {
        tm,
        m,
        last_read_objects: last_cost.distinct_objects,
        commit_objects: commit_cost.distinct_objects,
    }
}

/// Sweeps all TMs and renders the E4 table.
pub fn space_table(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "E4 (Theorem 3(2)) — distinct base objects in the m-th read + tryC (bound: ≥ m−1 under weak DAP + weak invisible reads)",
        &["m", "bound m-1", "ir-progressive", "visible-reads", "tl2", "norec", "glock"],
    );
    for &m in sizes {
        let mut row = vec![m.to_string(), (m - 1).to_string()];
        for &tm in ALL_TMS {
            let run = run_space(tm, m);
            row.push(run.footprint().to_string());
        }
        t.push(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progressive_touches_m_distinct_objects_in_last_read() {
        for m in [4, 8, 16] {
            let run = run_space(TmKind::Progressive, m);
            // meta[X_m], val[X_m], plus meta[X_1..X_{m-1}] = m + 1 objects.
            assert_eq!(run.last_read_objects, m + 1);
            assert!(run.footprint() >= m - 1, "lower bound respected");
        }
    }

    #[test]
    fn ablations_stay_constant() {
        for tm in [TmKind::Visible, TmKind::Tl2, TmKind::Norec, TmKind::Glock] {
            let small = run_space(tm, 4).last_read_objects;
            let large = run_space(tm, 32).last_read_objects;
            assert_eq!(
                small,
                large,
                "{}: last-read footprint must not grow",
                tm.name()
            );
        }
    }

    #[test]
    fn table_renders() {
        let t = space_table(&[2, 4]);
        assert!(t.render().contains("E4"));
    }
}
