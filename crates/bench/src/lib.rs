//! # ptm-bench — the experiment harness
//!
//! One module per experiment family from `DESIGN.md` / `EXPERIMENTS.md`:
//!
//! * [`figure1`] — E1/E2: the executions of Figure 1 and Claim 4,
//!   replayed step by step;
//! * [`validation`] — E3/E7/E8: Theorem 3(1)'s step-complexity sweep with
//!   the DAP and read-visibility ablations;
//! * [`space`] — E4: Theorem 3(2)'s distinct-base-objects sweep;
//! * [`rmr`] — E5/E6: Theorem 9's RMR accounting of the Algorithm 1
//!   reduction against the classic mutex baselines.
//!
//! The `paper_tables` bench target (`cargo bench -p ptm-bench --bench
//! paper_tables`, or `cargo run -p ptm-bench --bin paper-tables`) renders
//! every table; `native_stm` holds the microbenchmarks of the native STM
//! (E11/E12), `structs` the transactional data-structure workloads
//! (E13), and [`service`] the YCSB-style workloads against the sharded
//! KV service (throughput plus p50/p99 latency), each emitting a JSON
//! baseline.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figure1;
pub mod native;
pub mod rmr;
pub mod service;
pub mod space;
pub mod structs;
pub mod table;
pub mod validation;

/// Renders every paper table to stdout with the given sweep parameters
/// (`quick` shrinks the sweeps for CI-speed runs).
pub fn print_all_tables(quick: bool) {
    let sizes: &[usize] = if quick {
        &[2, 4, 8, 16]
    } else {
        &[2, 4, 8, 16, 32, 64, 128]
    };
    let ns: &[usize] = if quick {
        &[2, 4, 8]
    } else {
        &[2, 4, 8, 16, 32]
    };
    let passages = if quick { 4 } else { 6 };

    println!("# Paper tables — Progressive Transactional Memory in Time and Space\n");

    println!("## E1/E2 — Figure 1 executions (ir-progressive)\n");
    for (name, e) in [
        (
            "Figure 1a",
            figure1::figure1a(ptm_core::TmKind::Progressive, 4),
        ),
        (
            "Figure 1b",
            figure1::figure1b(ptm_core::TmKind::Progressive, 4),
        ),
        (
            "Claim 4",
            figure1::claim4(ptm_core::TmKind::Progressive, 4, 1),
        ),
    ] {
        println!("{name}: final read -> {}", e.final_read);
        println!(
            "  opaque: {}, strictly serializable: {}",
            e.opaque, e.strictly_serializable
        );
        for line in e.trace().lines() {
            println!("    {line}");
        }
        println!();
    }

    let (totals, per_read, exponents) = validation::validation_tables(sizes);
    totals.print();
    per_read.print();
    exponents.print();

    space::space_table(sizes).print();

    for t in rmr::rmr_tables(ns, passages, 0xC0FFEE) {
        t.print();
    }

    // The adversarial sweep deliberately drives spin-heavy interleavings;
    // cap n so the slowest arms stay within the step budget.
    let adv_ns: Vec<usize> = ns.iter().copied().filter(|&n| n <= 8).collect();
    rmr::adversary_table(&adv_ns, passages, 0xC0FFEE).print();
}
