//! E13 — transactional data-structure workloads with a JSON baseline.
//!
//! Four workload families over `ptm-structs`, each swept across the
//! four native algorithms and a thread ladder, emitting
//! `BENCH_structs.json` so successive PRs can compare structure-level
//! throughput (the raw-`TVar` suite in [`crate::native`] measures the
//! engine; this suite measures the layer users actually program
//! against):
//!
//! * `map_read_mostly/<algo>/<threads>` — 90% `get` / 10% `insert` over
//!   a pre-filled bucket-striped [`THashMap`]: the payoff of striping is
//!   that disjoint keys do not conflict;
//! * `queue_prod_cons/<algo>/<threads>` — half producers, half
//!   consumers on one [`TQueue`]: the sentinel keeps head and tail
//!   traffic disjoint while the queue is non-empty;
//! * `set_mix/<algo>/<threads>` — insert/remove/contains on a [`TSet`]
//!   with a range scan every 32nd operation (scans pull a long prefix
//!   into the read set — incremental validation pays quadratically,
//!   which is the paper's bound surfacing at the structure level);
//! * `array_transfer/<algo>/<threads>` — two-slot transfers on a
//!   [`TArray`], the structure-level bank workload.

use crate::native::{next_rand, BenchResult, ALGOS};

/// Canonical workspace-root location of the structure baseline (see
/// [`crate::native::baseline_path`] for the resolution rules).
pub fn structs_baseline_path() -> String {
    crate::native::baseline_path("BENCH_structs.json")
}
use ptm_stm::{Algorithm, Stm};
use ptm_structs::{TArray, THashMap, TQueue, TSet};
use std::sync::Arc;
use std::time::Instant;

fn time<F: FnOnce()>(f: F) -> u128 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos()
}

/// 90% lookups / 10% inserts over a pre-filled map of `keys` keys.
pub fn bench_map_read_mostly(
    algo: Algorithm,
    name: &str,
    keys: u64,
    threads: usize,
    ops_per_thread: u64,
) -> BenchResult {
    let stm = Arc::new(Stm::new(algo));
    let map: THashMap<u64, u64> = THashMap::with_buckets(256);
    stm.atomically(|tx| {
        for k in 0..keys {
            map.insert(tx, k, k)?;
        }
        Ok(())
    });
    let run = || {
        std::thread::scope(|s| {
            for t in 0..threads {
                let stm = Arc::clone(&stm);
                let map = map.clone();
                s.spawn(move || {
                    let mut rng = t as u64 + 1;
                    for _ in 0..ops_per_thread {
                        // Independent draws: deriving op and key from one
                        // draw would correlate their parities (an insert
                        // could only ever hit even keys).
                        let r = next_rand(&mut rng);
                        let key = next_rand(&mut rng) % keys;
                        if r.is_multiple_of(10) {
                            stm.atomically(|tx| map.insert(tx, key, r).map(drop));
                        } else {
                            let got = stm.atomically(|tx| map.get(tx, &key));
                            assert!(got.is_some());
                        }
                    }
                });
            }
        });
    };
    run(); // warmup
    let nanos = time(run);
    BenchResult {
        name: "map_read_mostly".into(),
        algo: name.into(),
        m: keys as usize,
        threads,
        ops: ops_per_thread * threads as u64,
        nanos,
    }
}

/// `threads / 2` producers and `threads / 2` consumers moving
/// `items_per_producer` elements each through one queue. `threads` must
/// be at least 2 (one producer/consumer pair); the reported thread count
/// is always the even `2 * pairs` actually spawned.
pub fn bench_queue_prod_cons(
    algo: Algorithm,
    name: &str,
    threads: usize,
    items_per_producer: u64,
) -> BenchResult {
    assert!(threads >= 2, "queue_prod_cons needs at least one pair");
    let pairs = threads / 2;
    let stm = Arc::new(Stm::new(algo));
    let run = || {
        let q: TQueue<u64> = TQueue::new();
        std::thread::scope(|s| {
            for p in 0..pairs {
                let stm = Arc::clone(&stm);
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..items_per_producer {
                        stm.atomically(|tx| q.enqueue(tx, p as u64 * 1_000_000 + i));
                    }
                });
            }
            for _ in 0..pairs {
                let stm = Arc::clone(&stm);
                let q = q.clone();
                s.spawn(move || {
                    let mut got = 0;
                    while got < items_per_producer {
                        match stm.atomically(|tx| q.dequeue(tx)) {
                            Some(_) => got += 1,
                            None => std::thread::yield_now(),
                        }
                    }
                });
            }
        });
    };
    run(); // warmup
    let nanos = time(run);
    BenchResult {
        name: "queue_prod_cons".into(),
        algo: name.into(),
        m: 0,
        threads: pairs * 2,
        ops: 2 * items_per_producer * pairs as u64,
        nanos,
    }
}

/// Insert/remove/contains mix over a `TSet` of up to `keys` keys, with
/// an inclusive range scan every 32nd operation.
pub fn bench_set_mix(
    algo: Algorithm,
    name: &str,
    keys: u64,
    threads: usize,
    ops_per_thread: u64,
) -> BenchResult {
    let stm = Arc::new(Stm::new(algo));
    let set: TSet<u64> = TSet::new();
    stm.atomically(|tx| {
        for k in (0..keys).step_by(2) {
            set.insert(tx, k)?;
        }
        Ok(())
    });
    let run = || {
        std::thread::scope(|s| {
            for t in 0..threads {
                let stm = Arc::clone(&stm);
                let set = set.clone();
                s.spawn(move || {
                    let mut rng = 0xBEEF + t as u64;
                    for op in 0..ops_per_thread {
                        let key = next_rand(&mut rng) % keys;
                        if op % 32 == 31 {
                            let lo = key.saturating_sub(8);
                            let scanned = stm.atomically(|tx| set.range(tx, &lo, &key));
                            assert!(scanned.len() as u64 <= keys);
                        } else {
                            match next_rand(&mut rng) % 3 {
                                0 => {
                                    stm.atomically(|tx| set.insert(tx, key));
                                }
                                1 => {
                                    stm.atomically(|tx| set.remove(tx, &key));
                                }
                                _ => {
                                    stm.atomically(|tx| set.contains(tx, &key));
                                }
                            }
                        }
                    }
                });
            }
        });
    };
    run(); // warmup
    let nanos = time(run);
    BenchResult {
        name: "set_mix".into(),
        algo: name.into(),
        m: keys as usize,
        threads,
        ops: ops_per_thread * threads as u64,
        nanos,
    }
}

/// Two-slot transfers over a `TArray` — the structure-level bank.
pub fn bench_array_transfer(
    algo: Algorithm,
    name: &str,
    slots: usize,
    threads: usize,
    ops_per_thread: u64,
) -> BenchResult {
    let stm = Arc::new(Stm::new(algo));
    let arr = TArray::new(slots, 1_000u64);
    let run = || {
        std::thread::scope(|s| {
            for t in 0..threads {
                let stm = Arc::clone(&stm);
                let arr = arr.clone();
                s.spawn(move || {
                    let mut rng = 7 + t as u64;
                    for _ in 0..ops_per_thread {
                        let from = next_rand(&mut rng) as usize % arr.len();
                        let to = next_rand(&mut rng) as usize % arr.len();
                        if from == to {
                            continue;
                        }
                        stm.atomically(|tx| {
                            let a = arr.get(tx, from)?;
                            let amt = a.min(3);
                            arr.update(tx, from, |x| x - amt)?;
                            arr.update(tx, to, |x| x + amt)
                        });
                    }
                });
            }
        });
        let total: u64 = arr.load_all().iter().sum();
        assert_eq!(total, slots as u64 * 1_000, "conservation violated");
    };
    run(); // warmup
    let nanos = time(run);
    BenchResult {
        name: "array_transfer".into(),
        algo: name.into(),
        m: slots,
        threads,
        ops: ops_per_thread * threads as u64,
        nanos,
    }
}

/// Runs the full structure suite. `quick` shrinks every workload for CI.
pub fn run_all(quick: bool) -> Vec<BenchResult> {
    let mut out = Vec::new();
    let map_ops: u64 = if quick { 400 } else { 20_000 };
    let queue_items: u64 = if quick { 300 } else { 10_000 };
    let set_ops: u64 = if quick { 200 } else { 5_000 };
    let array_ops: u64 = if quick { 400 } else { 20_000 };
    let ladder: &[usize] = if quick { &[2, 4] } else { &[1, 2, 4, 8] };

    for &(name, algo) in ALGOS {
        for &threads in ladder {
            out.push(bench_map_read_mostly(algo, name, 512, threads, map_ops));
        }
    }
    for &(name, algo) in ALGOS {
        // The queue workload needs at least one producer/consumer pair,
        // so its ladder starts at two threads.
        for &threads in ladder.iter().filter(|&&t| t >= 2) {
            out.push(bench_queue_prod_cons(algo, name, threads, queue_items));
        }
    }
    for &(name, algo) in ALGOS {
        for &threads in ladder {
            out.push(bench_set_mix(algo, name, 128, threads, set_ops));
        }
    }
    for &(name, algo) in ALGOS {
        for &threads in ladder {
            out.push(bench_array_transfer(algo, name, 16, threads, array_ops));
        }
    }
    out
}

/// Full entry point shared by the bench target and the binary: run,
/// print (with per-workload engine counters via `StatsSnapshot`'s
/// `Display`), and write the JSON baseline to `path`.
pub fn run_and_emit(quick: bool, path: &str) {
    eprintln!(
        "running transactional data-structure benchmarks ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    // A side run with stats on, so the table is accompanied by engine
    // counters (the timed runs above stay uninstrumented).
    for &(name, algo) in ALGOS {
        let stm = Stm::new(algo);
        let map: THashMap<u64, u64> = THashMap::with_buckets(64);
        stm.atomically(|tx| {
            for k in 0..64 {
                map.insert(tx, k, k)?;
            }
            Ok(())
        });
        for k in 0..64 {
            stm.atomically(|tx| map.get(tx, &k).map(drop));
        }
        eprintln!("  {name}: {}", stm.stats().snapshot());
    }
    let results = run_all(quick);
    print!("{}", crate::native::render_table(&results));
    let json = crate::native::to_json_named("structs", &results, quick);
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("baseline written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_produces_complete_results() {
        let results = vec![
            bench_map_read_mostly(Algorithm::Tl2, "tl2", 32, 2, 20),
            bench_queue_prod_cons(Algorithm::Norec, "norec", 2, 20),
            bench_set_mix(Algorithm::Incremental, "incremental", 16, 2, 20),
            bench_array_transfer(Algorithm::Tl2, "tl2", 8, 2, 20),
        ];
        for r in &results {
            assert!(r.ops > 0, "{}", r.name);
            assert!(r.ops_per_sec() > 0.0, "{}", r.name);
        }
        let json = crate::native::to_json_named("structs", &results, true);
        assert!(json.contains("\"bench\": \"structs\""));
        assert_eq!(json.matches("{\"name\"").count(), results.len());
        assert!(json.contains("map_read_mostly"));
        assert!(json.contains("queue_prod_cons"));
        assert!(json.contains("set_mix"));
        assert!(json.contains("array_transfer"));
    }
}
