//! E3 / E7 / E8 — Theorem 3(1): step complexity of read-only transactions.
//!
//! Workload: after `m` committed setup writers (one per t-object), a
//! read-only transaction reads `X_1 … X_m` step-contention-free. Measured:
//! steps of the i-th t-read and the transaction's total steps, per TM.
//!
//! Predicted shape: `ir-progressive` (weak DAP + invisible reads, the
//! hypotheses of the theorem) pays Θ(i) steps for the i-th read and Θ(m²)
//! total; every TM that drops one hypothesis (visible reads, or a global
//! clock/seqlock breaking DAP) stays Θ(1) per read, Θ(m) total.

use crate::table::{power_law_exponent, Table};
use ptm_core::{TmHarness, TmKind, ALL_TMS};
use ptm_sim::{ProcessId, TObjId, TOpResult};

/// Per-TM measurements of one read-only transaction of size `m`.
#[derive(Debug, Clone)]
pub struct ValidationRun {
    /// The TM measured.
    pub tm: TmKind,
    /// Read-set size.
    pub m: usize,
    /// Steps of each t-read, in order.
    pub per_read_steps: Vec<usize>,
    /// Steps of the final `tryC`.
    pub commit_steps: usize,
    /// Total steps of the transaction.
    pub total_steps: usize,
}

/// Runs the E3 workload for one TM and read-set size.
///
/// # Panics
///
/// Panics if any operation of the solo reader aborts (it must not: the
/// execution is step-contention-free from a t-quiescent configuration).
pub fn run_validation(tm: TmKind, m: usize) -> ValidationRun {
    let mut h = TmHarness::new(2, |b| tm.install(b, m));
    let writer = ProcessId::new(1);
    let reader = ProcessId::new(0);
    // Setup: commit an updating transaction per object so versions move.
    for i in 0..m {
        h.run_writer(writer, &[(TObjId::new(i), 100 + i as u64)]);
    }
    // The measured read-only transaction, solo.
    h.begin(reader);
    let mut per_read_steps = Vec::with_capacity(m);
    for i in 0..m {
        let (res, cost) = h.read(reader, TObjId::new(i));
        assert_eq!(
            res,
            TOpResult::Value(100 + i as u64),
            "{}: solo read {i} must return the committed value",
            tm.name()
        );
        per_read_steps.push(cost.steps);
    }
    let (res, commit_cost) = h.try_commit(reader);
    assert_eq!(
        res,
        TOpResult::Committed,
        "{}: solo reader must commit",
        tm.name()
    );
    let total_steps = per_read_steps.iter().sum::<usize>() + commit_cost.steps;
    h.stop_all();
    ValidationRun {
        tm,
        m,
        per_read_steps,
        commit_steps: commit_cost.steps,
        total_steps,
    }
}

/// Sweeps all TMs over the given read-set sizes and renders the E3
/// tables. Returns `(total-steps table, per-read table, exponents table)`.
pub fn validation_tables(sizes: &[usize]) -> (Table, Table, Table) {
    let mut totals = Table::new(
        "E3 (Theorem 3(1)) — total steps of an m-read read-only transaction",
        &[
            "m",
            "ir-progressive",
            "visible-reads",
            "tl2",
            "norec",
            "glock",
        ],
    );
    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); ALL_TMS.len()];
    let mut last_runs: Vec<Option<ValidationRun>> = vec![None; ALL_TMS.len()];
    for &m in sizes {
        let mut row = vec![m.to_string()];
        for (k, &tm) in ALL_TMS.iter().enumerate() {
            let run = run_validation(tm, m);
            row.push(run.total_steps.to_string());
            series[k].push((m as f64, run.total_steps as f64));
            last_runs[k] = Some(run);
        }
        totals.push(row);
    }

    let biggest = *sizes.last().expect("at least one size");
    let mut per_read = Table::new(
        format!("E3 — steps of the i-th t-read (m = {biggest})"),
        &[
            "i",
            "ir-progressive",
            "visible-reads",
            "tl2",
            "norec",
            "glock",
        ],
    );
    let probe_indices: Vec<usize> = [1, biggest / 4, biggest / 2, biggest]
        .iter()
        .copied()
        .filter(|&i| i >= 1)
        .collect();
    for &i in &probe_indices {
        let mut row = vec![i.to_string()];
        for run in last_runs.iter().flatten() {
            row.push(run.per_read_steps[i - 1].to_string());
        }
        per_read.push(row);
    }

    let mut exponents = Table::new(
        "E3 — fitted exponent k of total steps ≈ c·m^k (expected: 2 for ir-progressive, 1 otherwise)",
        &["tm", "exponent"],
    );
    for (k, &tm) in ALL_TMS.iter().enumerate() {
        // Fit the tail of the series, where the asymptotic term dominates
        // the per-read constants.
        let tail = &series[k][series[k].len().saturating_sub(4)..];
        exponents.push(vec![
            tm.name().to_string(),
            format!("{:.2}", power_law_exponent(tail)),
        ]);
    }
    (totals, per_read, exponents)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progressive_is_quadratic_others_linear() {
        let sizes = [4, 8, 16, 32];
        let mut prog = Vec::new();
        let mut tl2 = Vec::new();
        let mut vis = Vec::new();
        for &m in &sizes {
            prog.push((
                m as f64,
                run_validation(TmKind::Progressive, m).total_steps as f64,
            ));
            tl2.push((m as f64, run_validation(TmKind::Tl2, m).total_steps as f64));
            vis.push((
                m as f64,
                run_validation(TmKind::Visible, m).total_steps as f64,
            ));
        }
        let kp = power_law_exponent(&prog);
        let kt = power_law_exponent(&tl2);
        let kv = power_law_exponent(&vis);
        assert!(kp > 1.6, "ir-progressive exponent {kp}");
        assert!(kt < 1.2, "tl2 exponent {kt}");
        assert!(kv < 1.2, "visible exponent {kv}");
    }

    #[test]
    fn per_read_cost_grows_only_for_progressive() {
        let run = run_validation(TmKind::Progressive, 16);
        // i-th read costs 3 + (i-1).
        assert_eq!(run.per_read_steps[0], 3);
        assert_eq!(run.per_read_steps[15], 3 + 15);
        let run = run_validation(TmKind::Tl2, 16);
        assert!(run.per_read_steps.iter().all(|&s| s <= 4));
    }

    #[test]
    fn tables_render() {
        let (a, b, c) = validation_tables(&[2, 4]);
        assert!(a.render().contains("E3"));
        assert!(b.render().contains("i-th"));
        assert!(c.render().contains("exponent"));
    }
}
