//! E5 / E6 — Theorem 9: RMR cost of `n` processes performing transactions
//! on a single data item, via the Algorithm 1 reduction, against the
//! classic mutex baselines.
//!
//! Workload: `n` processes × `k` critical-section passages, scheduled by a
//! seeded random policy. For the TM side each passage runs `L(M)`'s
//! `Enter`/`Exit`, whose TM component performs transactions on one
//! t-object. Reported: RMRs per passage in the write-through CC,
//! write-back CC and DSM models.
//!
//! Interpretation against the paper: Theorem 9 is an *existential*
//! worst-case bound (an adversary forces Ω(n log n) total RMRs). Our
//! schedules are not that adversary, so the tables show the *upper* side:
//! `L(M)` stays within a constant factor of its TM (Theorem 7), queue
//! locks stay O(1) per passage, and the centralized spin locks blow up
//! linearly with `n` under contention — the separation that makes the
//! lower bound's subject matter visible.

use crate::table::Table;
use ptm_core::{GlockTm, ProgressiveTm, SimTm, TmMutex};
use ptm_model::satisfies_mutual_exclusion;
use ptm_mutex::{
    run_workload, AndersonLock, ClhLock, McsLock, SimMutex, TasLock, TicketLock, TtasLock,
    WorkloadResult,
};
use ptm_sim::RandomPolicy;
use std::sync::Arc;

/// The lock algorithms swept by the RMR experiment, in table order.
pub const ALGORITHMS: &[&str] = &[
    "L(glock)",
    "L(ir-progressive)",
    "tas",
    "ttas",
    "ticket",
    "anderson",
    "mcs",
    "clh",
];

fn install(name: &str) -> impl FnOnce(&mut ptm_sim::SimBuilder) -> Arc<dyn SimMutex> + '_ {
    move |b| match name {
        "L(glock)" => Arc::new(TmMutex::install(b, |b| {
            Arc::new(GlockTm::install(b, 1)) as Arc<dyn SimTm>
        })),
        "L(ir-progressive)" => Arc::new(TmMutex::install(b, |b| {
            Arc::new(ProgressiveTm::install(b, 1)) as Arc<dyn SimTm>
        })),
        "tas" => Arc::new(TasLock::install(b)),
        "ttas" => Arc::new(TtasLock::install(b)),
        "ticket" => Arc::new(TicketLock::install(b)),
        "anderson" => Arc::new(AndersonLock::install(b)),
        "mcs" => Arc::new(McsLock::install(b)),
        "clh" => Arc::new(ClhLock::install(b)),
        other => panic!("unknown lock algorithm {other}"),
    }
}

/// Runs one configuration and audits mutual exclusion.
///
/// # Panics
///
/// Panics if the run violates mutual exclusion (algorithm bug).
pub fn run_rmr(name: &str, n: usize, passages: usize, seed: u64) -> WorkloadResult {
    let result = run_workload(n, passages, install(name), &mut RandomPolicy::seeded(seed));
    assert!(
        satisfies_mutual_exclusion(&result.log),
        "{name}: mutual exclusion violated at n={n}"
    );
    result
}

/// Which RMR model a table reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmrModel {
    /// Write-through cache-coherent.
    WriteThrough,
    /// Write-back cache-coherent.
    WriteBack,
    /// Distributed shared memory.
    Dsm,
}

impl RmrModel {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            RmrModel::WriteThrough => "CC write-through",
            RmrModel::WriteBack => "CC write-back",
            RmrModel::Dsm => "DSM",
        }
    }

    fn per_passage(self, r: &WorkloadResult) -> f64 {
        match self {
            RmrModel::WriteThrough => r.rmr_per_passage_wt(),
            RmrModel::WriteBack => r.rmr_per_passage_wb(),
            RmrModel::Dsm => r.rmr_per_passage_dsm(),
        }
    }
}

/// Sweeps `n` for every algorithm and renders one table per RMR model,
/// plus the `n log n` reference column of Theorem 9.
pub fn rmr_tables(ns: &[usize], passages: usize, seed: u64) -> Vec<Table> {
    // Cache runs: one per (algorithm, n).
    let mut runs: Vec<Vec<WorkloadResult>> = Vec::new();
    for &name in ALGORITHMS {
        let mut per_n = Vec::new();
        for &n in ns {
            per_n.push(run_rmr(name, n, passages, seed));
        }
        runs.push(per_n);
    }
    [RmrModel::WriteThrough, RmrModel::WriteBack, RmrModel::Dsm]
        .into_iter()
        .map(|model| {
            let mut header: Vec<&str> = vec!["n", "log2(n)"];
            header.extend(ALGORITHMS);
            let mut t = Table::new(
                format!(
                    "E5/E6 (Theorem 9) — RMRs per passage, {} model (passages={passages})",
                    model.label()
                ),
                &header,
            );
            for (j, &n) in ns.iter().enumerate() {
                let mut row = vec![n.to_string(), format!("{:.1}", (n as f64).log2())];
                for algo_runs in &runs {
                    row.push(format!("{:.1}", model.per_passage(&algo_runs[j])));
                }
                t.push(row);
            }
            t
        })
        .collect()
}

/// E5-adv — schedule ablation: seeded-random vs RMR-greedy adversarial
/// schedules (write-back CC target). The lower bound of Theorem 9 is an
/// adversary argument; this table shows how much a simple greedy adversary
/// already extracts compared to a neutral schedule.
pub fn adversary_table(ns: &[usize], passages: usize, seed: u64) -> Table {
    let algos = ["L(glock)", "L(ir-progressive)", "tas", "mcs"];
    let mut header: Vec<String> = vec!["n".into()];
    for a in algos {
        header.push(format!("{a} rand"));
        header.push(format!("{a} adv"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!("E5-adv — RMRs/passage, CC write-back: random vs greedy-adversarial schedule (passages={passages})"),
        &header_refs,
    );
    for &n in ns {
        let mut row = vec![n.to_string()];
        for name in algos {
            let rand = run_rmr(name, n, passages, seed).rmr_per_passage_wb();
            let adv = {
                let result = run_workload(
                    n,
                    passages,
                    install(name),
                    &mut ptm_sim::GreedyRmrPolicy::new(ptm_sim::RmrTarget::WriteBack),
                );
                assert!(
                    satisfies_mutual_exclusion(&result.log),
                    "{name}: mutual exclusion violated under adversary at n={n}"
                );
                result.rmr_per_passage_wb()
            };
            row.push(format!("{rand:.1}"));
            row.push(format!("{adv:.1}"));
        }
        t.push(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_are_safe_at_small_n() {
        for &name in ALGORITHMS {
            let r = run_rmr(name, 3, 3, 5);
            assert_eq!(r.total_passages(), 9, "{name}");
        }
    }

    #[test]
    fn reduction_tracks_its_tm_within_a_constant() {
        // Theorem 7: RMR of L(M) is within a constant factor of M's.
        // With the glock TM, per-passage DSM RMRs must stay bounded as n
        // grows (the handoff spin is local).
        let small = run_rmr("L(glock)", 2, 6, 7).rmr_per_passage_dsm();
        let large = run_rmr("L(glock)", 8, 6, 7).rmr_per_passage_dsm();
        // Contention grows the TM's retry cost, but not unboundedly: allow
        // a generous constant.
        assert!(
            large < small * 16.0 + 64.0,
            "L(glock) DSM per-passage: {small} at n=2 vs {large} at n=8"
        );
    }

    #[test]
    fn queue_locks_beat_spin_locks_in_cc_under_contention() {
        let n = 8;
        let mcs = run_rmr("mcs", n, 5, 11).rmr_per_passage_wb();
        let tas = run_rmr("tas", n, 5, 11).rmr_per_passage_wb();
        assert!(mcs < tas, "mcs {mcs} vs tas {tas}");
    }

    #[test]
    fn tables_render_for_all_models() {
        let tables = rmr_tables(&[2, 4], 3, 3);
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert!(t.render().contains("RMRs per passage"));
        }
    }

    #[test]
    fn adversary_schedules_stay_safe_and_render() {
        let t = adversary_table(&[2, 4], 3, 5);
        assert!(t.render().contains("adversarial"));
    }

    #[test]
    fn adversary_extracts_at_least_as_much_from_tas() {
        // On the contended TAS lock the greedy adversary should charge at
        // least as many write-back RMRs as a neutral random schedule.
        let n = 6;
        let rand = run_rmr("tas", n, 4, 9).rmr_per_passage_wb();
        let adv = run_workload(
            n,
            4,
            install("tas"),
            &mut ptm_sim::GreedyRmrPolicy::new(ptm_sim::RmrTarget::WriteBack),
        )
        .rmr_per_passage_wb();
        assert!(adv >= rand * 0.9, "adversary {adv} vs random {rand}");
    }
}
