//! The service-tier benchmark family: YCSB-style workloads against
//! `ptm-server`'s sharded KV, emitting the `BENCH_service.json`
//! baseline.
//!
//! Unlike the native microbenchmark families, the interesting output
//! here is not just throughput: each configuration also reports the
//! **p50 and p99 per-operation latency** of its best pass, because a
//! serving tier is judged by its tail — a conflict storm that costs
//! little average throughput still shows up as a p99 cliff.
//!
//! Discipline matches the other baselines: for each shard count, passes
//! are **interleaved across algorithms** (pass k of every algorithm
//! before pass k+1 of any, so a bursty background neighbour taxes all
//! algorithms alike) and the reported pass is the best of
//! [`PHASE_PASSES`] by throughput, carrying its own latency
//! percentiles.

use crate::native::{baseline_path, ALGOS, PHASE_PASSES};
use ptm_server::{
    preload, run_workload, DurabilityConfig, DurableKv, KvBackend, Mix, ServiceConfig, ShardedKv,
    Workload, WorkloadConfig, WorkloadStats,
};
use ptm_stm::Algorithm;
use std::path::{Path, PathBuf};

/// One measured service configuration, with latency percentiles.
#[derive(Debug, Clone)]
pub struct ServiceResult {
    /// Bench family name (`service_update_heavy`, ...).
    pub name: String,
    /// Algorithm name.
    pub algo: String,
    /// Shard count.
    pub shards: usize,
    /// Worker thread count.
    pub threads: usize,
    /// Completed operations across all threads (best pass).
    pub ops: u64,
    /// Wall-clock nanoseconds of the best pass.
    pub nanos: u128,
    /// Median per-operation latency of the best pass, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile per-operation latency of the best pass.
    pub p99_ns: u64,
}

impl ServiceResult {
    /// Operations per second of the best pass.
    pub fn ops_per_sec(&self) -> f64 {
        if self.nanos == 0 {
            return f64::INFINITY;
        }
        self.ops as f64 * 1e9 / self.nanos as f64
    }
}

/// The committed baseline's canonical path.
pub fn service_baseline_path() -> String {
    baseline_path("BENCH_service.json")
}

fn best_pass(mut passes: Vec<WorkloadStats>) -> WorkloadStats {
    passes
        .drain(..)
        .max_by(|a, b| {
            a.ops_per_sec()
                .partial_cmp(&b.ops_per_sec())
                .expect("finite throughput")
        })
        .expect("at least one pass")
}

/// Runs one named workload shape across every algorithm and the given
/// shard counts, passes interleaved across algorithms per shard count.
pub fn bench_service_family(
    name: &str,
    mix: Mix,
    shard_counts: &[usize],
    threads: usize,
    ops_per_thread: u64,
    keys: u64,
) -> Vec<ServiceResult> {
    let cfg = WorkloadConfig {
        keys,
        zipf_theta: 0.99,
        mix,
        multi_span: 2,
    };
    let workload = Workload::new(cfg);
    let mut out = Vec::new();
    for &shards in shard_counts {
        // Fresh stores per shard count, shared across passes so later
        // passes run against a warmed (fully populated) store.
        let stores: Vec<(&'static str, ShardedKv<u64, u64>)> = ALGOS
            .iter()
            .map(|&(algo_name, algo)| {
                let kv = ShardedKv::new(shards, algo);
                preload(&kv, keys, 100);
                (algo_name, kv)
            })
            .collect();
        let mut passes: Vec<Vec<WorkloadStats>> = stores.iter().map(|_| Vec::new()).collect();
        for pass in 0..PHASE_PASSES {
            for (i, (_, kv)) in stores.iter().enumerate() {
                passes[i].push(run_workload(
                    kv,
                    &workload,
                    threads,
                    ops_per_thread,
                    0x5eed + pass as u64,
                ));
            }
        }
        for ((algo_name, _), algo_passes) in stores.iter().zip(passes) {
            let mut best = best_pass(algo_passes);
            out.push(ServiceResult {
                name: name.to_string(),
                algo: (*algo_name).to_string(),
                shards,
                threads,
                ops: best.ops,
                nanos: best.nanos,
                p50_ns: best.latencies.percentile(50.0),
                p99_ns: best.latencies.percentile(99.0),
            });
        }
    }
    out
}

/// A store under durability measurement: the same workload runs against
/// the plain sharded KV and the WAL-backed one.
enum DurStore {
    Off(ShardedKv<u64, u64>),
    Wal(DurableKv<u64, u64>),
}

impl KvBackend for DurStore {
    fn get(&self, key: &u64) -> Option<u64> {
        match self {
            DurStore::Off(kv) => KvBackend::get(kv, key),
            DurStore::Wal(kv) => KvBackend::get(kv, key),
        }
    }
    fn put(&self, key: u64, value: u64) -> Option<u64> {
        match self {
            DurStore::Off(kv) => KvBackend::put(kv, key, value),
            DurStore::Wal(kv) => KvBackend::put(kv, key, value),
        }
    }
    fn scan(&self) -> Vec<(u64, u64)> {
        match self {
            DurStore::Off(kv) => KvBackend::scan(kv),
            DurStore::Wal(kv) => KvBackend::scan(kv),
        }
    }
    fn transfer(&self, keys: &[u64]) {
        match self {
            DurStore::Off(kv) => KvBackend::transfer(kv, keys),
            DurStore::Wal(kv) => KvBackend::transfer(kv, keys),
        }
    }
}

/// Where the durability bench keeps its logs: a RAM-backed filesystem
/// when one exists, so the numbers measure the WAL's group-commit and
/// ack machinery rather than the benchmark host's disk.
fn durability_bench_root() -> PathBuf {
    let shm = Path::new("/dev/shm");
    if shm.is_dir() {
        shm.to_path_buf()
    } else {
        std::env::temp_dir()
    }
}

/// The durability cost benchmark: one algorithm (tl2), 4 shards, 8
/// threads, both workload shapes, three store configurations —
/// durability off, WAL with synchronous acks (the full contract), and
/// WAL buffered (`sync_acks: false`). Variants are interleaved per pass
/// like the algorithm families, and the variant lands in the `algo`
/// column (`tl2/off`, `tl2/wal-sync`, `tl2/wal-buffered`).
pub fn bench_durability_family(quick: bool) -> Vec<ServiceResult> {
    let threads = 8;
    let shards = 4;
    let ops: u64 = if quick { 2_000 } else { 12_000 };
    let keys: u64 = if quick { 1_024 } else { 4_096 };
    let root = durability_bench_root();
    let mut out = Vec::new();
    for (mix_name, mix) in [
        ("read_mostly", Mix::READ_MOSTLY),
        ("update_heavy", Mix::UPDATE_HEAVY),
    ] {
        let workload = Workload::new(WorkloadConfig {
            keys,
            zipf_theta: 0.99,
            mix,
            multi_span: 2,
        });
        let mut dirs = Vec::new();
        let mut open_wal = |tag: &str, sync_acks: bool| {
            let dir = root.join(format!(
                "ptm-bench-durab-{mix_name}-{tag}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            dirs.push(dir.clone());
            DurableKv::open(DurabilityConfig {
                service: ServiceConfig {
                    shards,
                    algorithm: Algorithm::Tl2,
                    buckets_per_shard: 64,
                    adaptive: None,
                },
                dir,
                sync_acks,
            })
            .expect("open bench WAL store")
        };
        let stores = [
            (
                "tl2/off",
                DurStore::Off(ShardedKv::new(shards, Algorithm::Tl2)),
            ),
            ("tl2/wal-sync", DurStore::Wal(open_wal("sync", true))),
            ("tl2/wal-buffered", DurStore::Wal(open_wal("buf", false))),
        ];
        for (_, kv) in &stores {
            preload(kv, keys, 100);
        }
        let mut passes: Vec<Vec<WorkloadStats>> = stores.iter().map(|_| Vec::new()).collect();
        for pass in 0..PHASE_PASSES {
            for (i, (_, kv)) in stores.iter().enumerate() {
                passes[i].push(run_workload(
                    kv,
                    &workload,
                    threads,
                    ops,
                    0x5eed + pass as u64,
                ));
            }
        }
        for ((variant, _), variant_passes) in stores.iter().zip(passes) {
            let mut best = best_pass(variant_passes);
            out.push(ServiceResult {
                name: format!("durability_{mix_name}"),
                algo: (*variant).to_string(),
                shards,
                threads,
                ops: best.ops,
                nanos: best.nanos,
                p50_ns: best.latencies.percentile(50.0),
                p99_ns: best.latencies.percentile(99.0),
            });
        }
        drop(stores);
        for dir in dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
    out
}

/// The full service suite: an update-heavy and a read-mostly shape, two
/// (or three) shard counts, all six algorithms, plus the durability
/// cost family. `quick` shrinks the op counts and drops the largest
/// shard count for CI smoke runs.
pub fn run_all(quick: bool) -> Vec<ServiceResult> {
    let threads = 4;
    let ops: u64 = if quick { 4_000 } else { 25_000 };
    let keys: u64 = if quick { 1_024 } else { 4_096 };
    let shard_counts: &[usize] = if quick { &[1, 4] } else { &[1, 4, 8] };
    let mut out = bench_service_family(
        "service_update_heavy",
        Mix::UPDATE_HEAVY,
        shard_counts,
        threads,
        ops,
        keys,
    );
    out.extend(bench_service_family(
        "service_read_mostly",
        Mix::READ_MOSTLY,
        shard_counts,
        threads,
        ops,
        keys,
    ));
    out.extend(bench_durability_family(quick));
    out
}

/// Renders results as an aligned text table.
pub fn render_table(results: &[ServiceResult]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<24} {:>12} {:>7} {:>8} {:>10} {:>12} {:>10} {:>10}\n",
        "bench", "algo", "shards", "threads", "ops", "ops/sec", "p50(ns)", "p99(ns)"
    ));
    for r in results {
        s.push_str(&format!(
            "{:<24} {:>12} {:>7} {:>8} {:>10} {:>12.0} {:>10} {:>10}\n",
            r.name,
            r.algo,
            r.shards,
            r.threads,
            r.ops,
            r.ops_per_sec(),
            r.p50_ns,
            r.p99_ns
        ));
    }
    s
}

/// Serializes results as the `BENCH_service.json` baseline document
/// (same envelope as the other baselines, plus the latency fields).
pub fn to_json(results: &[ServiceResult], quick: bool) -> String {
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"service\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"hardware_threads\": {threads},\n"));
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"algo\": \"{}\", \"shards\": {}, \"threads\": {}, \"ops\": {}, \"nanos\": {}, \"ops_per_sec\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}}}{sep}\n",
            r.name, r.algo, r.shards, r.threads, r.ops, r.nanos, r.ops_per_sec(), r.p50_ns, r.p99_ns
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Run, print, and write the baseline to `path`.
pub fn run_and_emit(quick: bool, path: &str) {
    eprintln!(
        "running service benchmarks ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let results = run_all(quick);
    print!("{}", render_table(&results));
    let json = to_json(&results, quick);
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("baseline written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_json_has_the_latency_fields() {
        let r = ServiceResult {
            name: "service_update_heavy".into(),
            algo: "tl2".into(),
            shards: 4,
            threads: 4,
            ops: 1000,
            nanos: 2_000_000,
            p50_ns: 900,
            p99_ns: 12_000,
        };
        let json = to_json(&[r], true);
        assert!(json.contains("\"bench\": \"service\""), "{json}");
        assert!(json.contains("\"p50_ns\": 900"), "{json}");
        assert!(json.contains("\"p99_ns\": 12000"), "{json}");
        assert!(json.contains("\"shards\": 4"), "{json}");
    }

    #[test]
    fn family_reports_every_algorithm_per_shard_count() {
        let out = bench_service_family("service_smoke", Mix::READ_MOSTLY, &[1, 2], 2, 50, 128);
        assert_eq!(out.len(), 2 * ALGOS.len());
        for r in &out {
            assert!(r.ops > 0);
            assert!(r.p99_ns >= r.p50_ns, "{r:?}");
        }
    }
}
