//! Ticket lock and Anderson's array-based queue lock.
//!
//! The ticket lock grants the critical section in FIFO order but makes
//! every waiter spin on the same `serving` word (invalidation storm per
//! release in CC). Anderson's lock gives each waiter its own array slot,
//! so a release invalidates exactly one waiter's cache line in CC — the
//! O(1)-RMR-per-passage behaviour (in CC) that motivated queue locks.

use crate::api::{MutexToken, SimMutex};
use ptm_sim::{BaseObjectId, Ctx, Home, ProcessId, SimBuilder, Word};

/// FIFO ticket lock: `next` dispenser + `serving` counter.
#[derive(Debug, Clone)]
pub struct TicketLock {
    next: BaseObjectId,
    serving: BaseObjectId,
}

impl TicketLock {
    /// Allocates the two counters.
    pub fn install(builder: &mut SimBuilder) -> Self {
        TicketLock {
            next: builder.alloc("ticket.next", 0, Home::Global),
            serving: builder.alloc("ticket.serving", 0, Home::Global),
        }
    }
}

impl SimMutex for TicketLock {
    fn name(&self) -> &'static str {
        "ticket"
    }

    fn enter(&self, ctx: &Ctx) -> MutexToken {
        let t = ctx.fetch_add(self.next, 1);
        while ctx.read(self.serving) != t {}
        MutexToken(t)
    }

    fn exit(&self, ctx: &Ctx, token: MutexToken) {
        ctx.write(self.serving, token.0 + 1);
    }
}

/// Anderson's array-based queue lock.
///
/// `slots[i]` is `1` when the ticket congruent to `i` may enter. Slots are
/// assigned round-robin by a fetch-and-add ticket, so each waiter spins on
/// its own word — local spinning in the CC models. In DSM the slot a
/// waiter gets is usually remote (slot homes are static but tickets
/// rotate), which is why Anderson's lock is a CC-only queue lock.
#[derive(Debug, Clone)]
pub struct AndersonLock {
    ticket: BaseObjectId,
    slots: Vec<BaseObjectId>,
}

impl AndersonLock {
    /// Allocates the dispenser and one slot per process.
    pub fn install(builder: &mut SimBuilder) -> Self {
        let n = builder.n_processes();
        let ticket = builder.alloc("anderson.ticket", 0, Home::Global);
        let slots = (0..n)
            .map(|i| {
                let init = u64::from(i == 0); // slot 0 starts granted
                builder.alloc(
                    format!("anderson.slot[{i}]"),
                    init,
                    Home::Process(ProcessId::new(i)),
                )
            })
            .collect();
        AndersonLock { ticket, slots }
    }

    fn slot_of(&self, t: Word) -> BaseObjectId {
        self.slots[(t as usize) % self.slots.len()]
    }
}

impl SimMutex for AndersonLock {
    fn name(&self) -> &'static str {
        "anderson"
    }

    fn enter(&self, ctx: &Ctx) -> MutexToken {
        let t = ctx.fetch_add(self.ticket, 1);
        let slot = self.slot_of(t);
        while ctx.read(slot) == 0 {}
        ctx.write(slot, 0); // consume the grant for slot reuse
        MutexToken(t)
    }

    fn exit(&self, ctx: &Ctx, token: MutexToken) {
        ctx.write(self.slot_of(token.0 + 1), 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::mutex_process_body;
    use ptm_sim::{run_policy, Marker, MutexOp, RandomPolicy};
    use std::sync::Arc;

    fn count_enters(log: &[ptm_sim::LogEntry]) -> usize {
        log.iter()
            .filter(|e| {
                matches!(
                    e.marker(),
                    Some(Marker::MutexResponse { op: MutexOp::Enter })
                )
            })
            .count()
    }

    fn enters_are_fifo(log: &[ptm_sim::LogEntry], dispenser: BaseObjectId) -> bool {
        // With a FIFO lock, Enter responses appear in the order tickets
        // were drawn from the dispenser.
        let mut draw_order = Vec::new();
        let mut response_order = Vec::new();
        for e in log {
            if let Some(m) = e.mem() {
                if m.obj == dispenser && matches!(m.prim, ptm_sim::Primitive::FetchAdd(_)) {
                    draw_order.push(e.pid);
                }
            }
            if let Some(Marker::MutexResponse { op: MutexOp::Enter }) = e.marker() {
                response_order.push(e.pid);
            }
        }
        draw_order == response_order
    }

    fn run<L: SimMutex + 'static>(
        install: impl Fn(&mut SimBuilder) -> L,
        n: usize,
        passages: usize,
        seed: u64,
    ) -> Vec<ptm_sim::LogEntry> {
        let mut b = SimBuilder::new(n);
        let lock: Arc<dyn SimMutex> = Arc::new(install(&mut b));
        for _ in 0..n {
            let l = Arc::clone(&lock);
            b.add_process(move |ctx| mutex_process_body(l, passages, ctx));
        }
        let sim = b.start();
        run_policy(&sim, &mut RandomPolicy::seeded(seed), 2_000_000);
        assert!(sim.runnable().is_empty());
        sim.log()
    }

    #[test]
    fn ticket_is_fifo() {
        // ticket.next is the first object allocated by TicketLock.
        let log = run(TicketLock::install, 4, 3, 5);
        assert_eq!(count_enters(&log), 12);
        assert!(enters_are_fifo(&log, BaseObjectId::new(0)));
    }

    #[test]
    fn anderson_is_fifo() {
        // anderson.ticket is the first object allocated by AndersonLock.
        let log = run(AndersonLock::install, 4, 3, 9);
        assert_eq!(count_enters(&log), 12);
        assert!(enters_are_fifo(&log, BaseObjectId::new(0)));
    }

    #[test]
    fn anderson_slot_reuse_across_rounds() {
        // More total passages than slots forces slot reuse.
        let log = run(AndersonLock::install, 2, 5, 13);
        assert_eq!(count_enters(&log), 10);
    }
}
