//! MCS and CLH queue locks.
//!
//! MCS (Mellor-Crummey & Scott) threads waiters into an explicit linked
//! queue; each waiter spins on a flag in its *own* node, giving O(1) RMR
//! per passage in both CC and DSM — the gold standard Theorem 9's
//! reduction is compared against. CLH builds the queue implicitly (each
//! waiter spins on its predecessor's node), which is O(1) RMR in CC but
//! *not* in DSM, since the predecessor's node is usually remote — the
//! classic CC/DSM contrast the RMR tables exhibit.

use crate::api::{MutexToken, SimMutex};
use ptm_sim::{BaseObjectId, Ctx, Home, ProcessId, SimBuilder};
use std::sync::Mutex;

/// MCS queue lock. One statically allocated node per process (reused
/// across passages, as in the original algorithm).
#[derive(Debug)]
pub struct McsLock {
    /// Queue tail: `0` = empty, else `pid + 1` of the last waiter.
    tail: BaseObjectId,
    /// `locked` flag per process node (spun on locally).
    locked: Vec<BaseObjectId>,
    /// `next` pointer per process node (`0` = nil, else `pid + 1`).
    next: Vec<BaseObjectId>,
}

impl McsLock {
    /// Allocates the tail and one node per process, homed at its owner.
    pub fn install(builder: &mut SimBuilder) -> Self {
        let n = builder.n_processes();
        let tail = builder.alloc("mcs.tail", 0, Home::Global);
        let locked = (0..n)
            .map(|i| {
                builder.alloc(
                    format!("mcs.locked[p{i}]"),
                    0,
                    Home::Process(ProcessId::new(i)),
                )
            })
            .collect();
        let next = (0..n)
            .map(|i| {
                builder.alloc(
                    format!("mcs.next[p{i}]"),
                    0,
                    Home::Process(ProcessId::new(i)),
                )
            })
            .collect();
        McsLock { tail, locked, next }
    }
}

impl SimMutex for McsLock {
    fn name(&self) -> &'static str {
        "mcs"
    }

    fn enter(&self, ctx: &Ctx) -> MutexToken {
        let me = ctx.pid().index();
        ctx.write(self.next[me], 0);
        ctx.write(self.locked[me], 1);
        let prev = ctx.swap(self.tail, me as u64 + 1);
        if prev != 0 {
            let prev = (prev - 1) as usize;
            ctx.write(self.next[prev], me as u64 + 1);
            while ctx.read(self.locked[me]) != 0 {}
        }
        MutexToken(0)
    }

    fn exit(&self, ctx: &Ctx, _token: MutexToken) {
        let me = ctx.pid().index();
        let mut succ = ctx.read(self.next[me]);
        if succ == 0 {
            if ctx.cas(self.tail, me as u64 + 1, 0) {
                return; // no successor
            }
            // A successor is enqueueing; wait for the link.
            loop {
                succ = ctx.read(self.next[me]);
                if succ != 0 {
                    break;
                }
            }
        }
        ctx.write(self.locked[(succ - 1) as usize], 0);
    }
}

/// CLH queue lock with `n + 1` flag nodes (one sentinel).
///
/// Node ownership rotates: on release a process adopts its predecessor's
/// node. The rotation bookkeeping (`my_node`) is thread-local in a real
/// implementation and is therefore kept outside the simulated memory.
#[derive(Debug)]
pub struct ClhLock {
    /// Queue tail holding a node index.
    tail: BaseObjectId,
    /// Node flags: `1` = holder/waiter pending, `0` = released.
    flags: Vec<BaseObjectId>,
    /// Thread-local node assignment, indexed by pid (not simulated state).
    my_node: Mutex<Vec<usize>>,
}

impl ClhLock {
    /// Allocates `n + 1` nodes; node `i < n` is homed at process `i`, the
    /// sentinel is global. The tail initially points at the sentinel,
    /// which is released.
    pub fn install(builder: &mut SimBuilder) -> Self {
        let n = builder.n_processes();
        let flags: Vec<BaseObjectId> = (0..=n)
            .map(|i| {
                let home = if i < n {
                    Home::Process(ProcessId::new(i))
                } else {
                    Home::Global
                };
                builder.alloc(format!("clh.node[{i}]"), 0, home)
            })
            .collect();
        let tail = builder.alloc("clh.tail", n as u64, Home::Global);
        ClhLock {
            tail,
            flags,
            my_node: Mutex::new((0..n).collect()),
        }
    }
}

impl SimMutex for ClhLock {
    fn name(&self) -> &'static str {
        "clh"
    }

    fn enter(&self, ctx: &Ctx) -> MutexToken {
        let me = ctx.pid().index();
        let node = self.my_node.lock().expect("clh bookkeeping")[me];
        ctx.write(self.flags[node], 1);
        let pred = ctx.swap(self.tail, node as u64) as usize;
        while ctx.read(self.flags[pred]) != 0 {}
        // Remember the predecessor's node: it becomes ours on release.
        MutexToken(pred as u64)
    }

    fn exit(&self, ctx: &Ctx, token: MutexToken) {
        let me = ctx.pid().index();
        let node = {
            let mut nodes = self.my_node.lock().expect("clh bookkeeping");
            let node = nodes[me];
            nodes[me] = token.0 as usize; // adopt the predecessor's node
            node
        };
        ctx.write(self.flags[node], 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::mutex_process_body;
    use ptm_sim::{run_policy, Marker, MutexOp, RandomPolicy, Sim};
    use std::sync::Arc;

    fn run<L: SimMutex + 'static>(
        install: impl Fn(&mut SimBuilder) -> L,
        n: usize,
        passages: usize,
        seed: u64,
    ) -> Sim {
        let mut b = SimBuilder::new(n);
        let lock: Arc<dyn SimMutex> = Arc::new(install(&mut b));
        for _ in 0..n {
            let l = Arc::clone(&lock);
            b.add_process(move |ctx| mutex_process_body(l, passages, ctx));
        }
        let sim = b.start();
        run_policy(&sim, &mut RandomPolicy::seeded(seed), 4_000_000);
        assert!(sim.runnable().is_empty(), "all processes must finish");
        sim
    }

    fn count_enters(log: &[ptm_sim::LogEntry]) -> usize {
        log.iter()
            .filter(|e| {
                matches!(
                    e.marker(),
                    Some(Marker::MutexResponse { op: MutexOp::Enter })
                )
            })
            .count()
    }

    #[test]
    fn mcs_completes_contended_passages() {
        let sim = run(McsLock::install, 4, 5, 3);
        assert_eq!(count_enters(&sim.log()), 20);
    }

    #[test]
    fn clh_completes_contended_passages() {
        let sim = run(ClhLock::install, 4, 5, 17);
        assert_eq!(count_enters(&sim.log()), 20);
    }

    #[test]
    fn mcs_uncontended_passage_is_constant_rmr() {
        // A single process entering and exiting repeatedly: RMR per
        // passage must not grow with the number of passages.
        let sim = run(McsLock::install, 1, 10, 1);
        let m = sim.metrics();
        // 10 passages; write-back CC RMRs stay O(1) per passage.
        assert!(m.rmr_write_back(0.into()) <= 10 * 4);
    }

    #[test]
    fn mcs_waiters_spin_locally_in_dsm() {
        // With 2 processes and many passages, DSM RMRs of each process
        // stay bounded per passage (local spinning on own node).
        let sim = run(McsLock::install, 2, 10, 23);
        let m = sim.metrics();
        for p in 0..2 {
            let passages = 10;
            // Enter: swap(tail)=1 RMR + link to prev node (1) ; Exit: read
            // own next (0, local) + CAS tail (1) or write succ flag (1).
            // Spins on own node are free. Allow generous slack.
            assert!(
                m.rmr_dsm(p.into()) <= passages * 6,
                "process {p}: {} DSM RMRs for {passages} passages",
                m.rmr_dsm(p.into())
            );
        }
    }
}
