//! Centralized spin locks: test-and-set and test-and-test-and-set.
//!
//! Both spin on a single global word, so in the CC models every
//! lock-release invalidates all waiters' cached copies (O(n) RMR per
//! passage under contention) and in the DSM model every spin iteration of
//! a non-owner is remote. They are the "bad" baselines the queue locks in
//! this crate — and the paper's Algorithm 1 — are measured against.

use crate::api::{MutexToken, SimMutex};
use ptm_sim::{BaseObjectId, Ctx, Home, SimBuilder};

/// Test-and-set lock: CAS-spin directly on the lock word.
#[derive(Debug, Clone)]
pub struct TasLock {
    word: BaseObjectId,
}

impl TasLock {
    /// Allocates the lock word.
    pub fn install(builder: &mut SimBuilder) -> Self {
        TasLock {
            word: builder.alloc("tas.lock", 0, Home::Global),
        }
    }
}

impl SimMutex for TasLock {
    fn name(&self) -> &'static str {
        "tas"
    }

    fn enter(&self, ctx: &Ctx) -> MutexToken {
        while !ctx.cas(self.word, 0, 1) {}
        MutexToken(0)
    }

    fn exit(&self, ctx: &Ctx, _token: MutexToken) {
        ctx.write(self.word, 0);
    }
}

/// Test-and-test-and-set lock: read-spin until free, then CAS.
///
/// The read-spin makes waiting local in the CC models (the waiter spins in
/// its cache) until a release invalidates everyone — the classic
/// invalidation-storm pattern of Anderson's 1990 study.
#[derive(Debug, Clone)]
pub struct TtasLock {
    word: BaseObjectId,
}

impl TtasLock {
    /// Allocates the lock word.
    pub fn install(builder: &mut SimBuilder) -> Self {
        TtasLock {
            word: builder.alloc("ttas.lock", 0, Home::Global),
        }
    }
}

impl SimMutex for TtasLock {
    fn name(&self) -> &'static str {
        "ttas"
    }

    fn enter(&self, ctx: &Ctx) -> MutexToken {
        loop {
            while ctx.read(self.word) != 0 {}
            if ctx.cas(self.word, 0, 1) {
                return MutexToken(0);
            }
        }
    }

    fn exit(&self, ctx: &Ctx, _token: MutexToken) {
        ctx.write(self.word, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::mutex_process_body;
    use ptm_sim::{run_policy, RandomPolicy};
    use std::sync::Arc;

    fn run_lock<L: SimMutex + 'static>(
        install: impl Fn(&mut SimBuilder) -> L,
        n: usize,
        passages: usize,
        seed: u64,
    ) -> Vec<ptm_sim::LogEntry> {
        let mut b = SimBuilder::new(n);
        let lock: Arc<dyn SimMutex> = Arc::new(install(&mut b));
        for _ in 0..n {
            let l = Arc::clone(&lock);
            b.add_process(move |ctx| mutex_process_body(l, passages, ctx));
        }
        let sim = b.start();
        run_policy(&sim, &mut RandomPolicy::seeded(seed), 2_000_000);
        assert!(sim.runnable().is_empty(), "all processes must finish");
        sim.log()
    }

    #[test]
    fn tas_runs_all_passages() {
        let log = run_lock(TasLock::install, 3, 4, 7);
        let enters = log
            .iter()
            .filter(|e| {
                matches!(
                    e.marker(),
                    Some(ptm_sim::Marker::MutexResponse {
                        op: ptm_sim::MutexOp::Enter
                    })
                )
            })
            .count();
        assert_eq!(enters, 12);
    }

    #[test]
    fn ttas_runs_all_passages() {
        let log = run_lock(TtasLock::install, 3, 4, 11);
        let enters = log
            .iter()
            .filter(|e| {
                matches!(
                    e.marker(),
                    Some(ptm_sim::Marker::MutexResponse {
                        op: ptm_sim::MutexOp::Enter
                    })
                )
            })
            .count();
        assert_eq!(enters, 12);
    }
}
