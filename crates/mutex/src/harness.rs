//! Workload harness: `n` processes × `k` passages under a schedule,
//! returning the execution log and RMR counters.
//!
//! Used by the Theorem 9 experiment (`exp_rmr_single_object` /
//! `exp_rmr_mutex_baselines`) and by the cross-crate tests, which feed the
//! log to `ptm-model`'s mutual-exclusion checker.

use crate::api::{mutex_process_body, SimMutex};
use ptm_sim::{run_policy, LogEntry, Metrics, SchedulePolicy, Sim, SimBuilder};
use std::sync::Arc;

/// Result of a mutex workload run.
#[derive(Debug)]
pub struct WorkloadResult {
    /// Number of processes.
    pub n: usize,
    /// Passages per process.
    pub passages: usize,
    /// The full execution log (markers + memory events).
    pub log: Vec<LogEntry>,
    /// Final step/RMR counters.
    pub metrics: Metrics,
    /// Total steps granted by the scheduler.
    pub steps: usize,
}

impl WorkloadResult {
    /// Total passages completed (should equal `n * passages`).
    pub fn total_passages(&self) -> usize {
        self.n * self.passages
    }

    /// Average write-through CC RMRs per passage.
    pub fn rmr_per_passage_wt(&self) -> f64 {
        self.metrics.total_rmr_write_through() as f64 / self.total_passages() as f64
    }

    /// Average write-back CC RMRs per passage.
    pub fn rmr_per_passage_wb(&self) -> f64 {
        self.metrics.total_rmr_write_back() as f64 / self.total_passages() as f64
    }

    /// Average DSM RMRs per passage.
    pub fn rmr_per_passage_dsm(&self) -> f64 {
        self.metrics.total_rmr_dsm() as f64 / self.total_passages() as f64
    }
}

/// Runs `n` processes each performing `passages` critical-section
/// passages on the lock produced by `install`, scheduled by `policy`.
///
/// # Panics
///
/// Panics if the workload does not finish within the (generous) step
/// budget — which would indicate a deadlock in the lock under test.
pub fn run_workload(
    n: usize,
    passages: usize,
    install: impl FnOnce(&mut SimBuilder) -> Arc<dyn SimMutex>,
    policy: &mut dyn SchedulePolicy,
) -> WorkloadResult {
    let mut builder = SimBuilder::new(n);
    let lock = install(&mut builder);
    for _ in 0..n {
        let l = Arc::clone(&lock);
        builder.add_process(move |ctx| mutex_process_body(l, passages, ctx));
    }
    let sim: Sim = builder.start();
    // Budget: contended spin locks take O(n) steps per passage in the
    // worst schedules; 4M steps covers every configuration we sweep.
    let budget = 4_000_000;
    let steps = run_policy(&sim, policy, budget);
    assert!(
        sim.runnable().is_empty(),
        "mutex workload did not finish within {budget} steps (deadlock?)"
    );
    WorkloadResult {
        n,
        passages,
        log: sim.log(),
        metrics: sim.metrics(),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::McsLock;
    use crate::spin::TasLock;
    use ptm_sim::RandomPolicy;

    #[test]
    fn workload_counts_passages() {
        let r = run_workload(
            3,
            4,
            |b| Arc::new(TasLock::install(b)),
            &mut RandomPolicy::seeded(2),
        );
        assert_eq!(r.total_passages(), 12);
        assert!(r.steps > 0);
        assert!(r.rmr_per_passage_wt() > 0.0);
    }

    #[test]
    fn mcs_beats_tas_on_dsm_under_contention() {
        let mcs = run_workload(
            6,
            5,
            |b| Arc::new(McsLock::install(b)),
            &mut RandomPolicy::seeded(4),
        );
        let tas = run_workload(
            6,
            5,
            |b| Arc::new(TasLock::install(b)),
            &mut RandomPolicy::seeded(4),
        );
        assert!(
            mcs.rmr_per_passage_dsm() < tas.rmr_per_passage_dsm(),
            "mcs {} vs tas {}",
            mcs.rmr_per_passage_dsm(),
            tas.rmr_per_passage_dsm()
        );
    }
}
