//! The mutual-exclusion interface over the simulated shared memory, plus
//! the standard workload harness used by the RMR experiments.
//!
//! Section 5 of the paper defines a mutex object with `Enter`/`Exit`
//! operations and reduces TM RMR complexity to mutex RMR complexity. The
//! [`SimMutex`] trait is implemented both by the classic spin locks in
//! this crate and by `ptm-core`'s Algorithm 1 reduction.

use ptm_sim::{Ctx, Marker, MutexOp, Word};
use std::sync::Arc;

/// State carried from [`SimMutex::enter`] to the matching
/// [`SimMutex::exit`] (a ticket number, an array slot, …). One word is
/// enough for every algorithm in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MutexToken(pub Word);

/// A mutual-exclusion object over the simulated shared memory.
///
/// `enter` blocks (spins via simulated steps) until the calling process
/// holds the critical section; `exit` releases it. Implementations keep
/// all *shared* state in simulated base objects — only genuinely
/// thread-local bookkeeping (e.g. CLH node recycling) may live outside the
/// simulation, mirroring what a real implementation keeps in registers.
pub trait SimMutex: Send + Sync {
    /// Short name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Acquires the critical section on behalf of the calling process.
    fn enter(&self, ctx: &Ctx) -> MutexToken;

    /// Releases the critical section.
    fn exit(&self, ctx: &Ctx, token: MutexToken);
}

/// The standard process body for mutex workloads: `passages` acquisitions
/// with invocation/response markers around each `Enter`/`Exit`, so
/// `ptm-model`'s mutual-exclusion checker can audit the log.
pub fn mutex_process_body(lock: Arc<dyn SimMutex>, passages: usize, ctx: &Ctx) {
    for _ in 0..passages {
        ctx.marker(Marker::MutexInvoke { op: MutexOp::Enter });
        let token = lock.enter(ctx);
        ctx.marker(Marker::MutexResponse { op: MutexOp::Enter });
        ctx.marker(Marker::MutexInvoke { op: MutexOp::Exit });
        lock.exit(ctx, token);
        ctx.marker(Marker::MutexResponse { op: MutexOp::Exit });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_default_is_zero() {
        assert_eq!(MutexToken::default(), MutexToken(0));
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes(_: &dyn SimMutex) {}
    }
}
