//! # ptm-mutex — mutual exclusion over the simulated shared memory
//!
//! Section 5 of *Progressive Transactional Memory in Time and Space*
//! proves its `Ω(n log n)` RMR lower bound by reducing TM to mutual
//! exclusion. This crate provides the mutex side of that story:
//!
//! * [`SimMutex`] — the `Enter`/`Exit` interface (implemented here by the
//!   classic spin and queue locks, and by `ptm-core`'s Algorithm 1
//!   reduction `L(M)`);
//! * baselines with well-known RMR profiles: [`TasLock`], [`TtasLock`]
//!   (O(n) per passage in CC under contention), [`TicketLock`],
//!   [`AndersonLock`] (O(1) in CC), [`McsLock`] (O(1) in CC *and* DSM),
//!   [`ClhLock`] (O(1) in CC, unbounded in DSM);
//! * [`run_workload`] — the standard `n × passages` experiment harness
//!   with per-model RMR accounting.
//!
//! ## Example
//!
//! ```
//! use ptm_mutex::{run_workload, McsLock};
//! use ptm_sim::RandomPolicy;
//! use std::sync::Arc;
//!
//! let r = run_workload(
//!     4,
//!     3,
//!     |b| Arc::new(McsLock::install(b)),
//!     &mut RandomPolicy::seeded(1),
//! );
//! assert_eq!(r.total_passages(), 12);
//! // MCS spins locally: DSM RMRs per passage stay constant.
//! assert!(r.rmr_per_passage_dsm() < 8.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod api;
mod harness;
mod queue;
mod spin;
mod ticket;

pub use api::{mutex_process_body, MutexToken, SimMutex};
pub use harness::{run_workload, WorkloadResult};
pub use queue::{ClhLock, McsLock};
pub use spin::{TasLock, TtasLock};
pub use ticket::{AndersonLock, TicketLock};
