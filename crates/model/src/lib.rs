//! # ptm-model — the paper's formal model, as checkers
//!
//! Sections 2–3 of *Progressive Transactional Memory in Time and Space*
//! define histories, opacity, strict serializability, progressiveness,
//! strong progressiveness, invisible / weak invisible reads, and weak
//! disjoint-access parallelism. This crate implements each definition as a
//! checker over the execution logs produced by [`ptm_sim`], so every TM
//! algorithm in the workspace is *machine-validated* against the exact
//! properties the theorems assume:
//!
//! * [`History`] — parsed t-operation histories with real-time order,
//!   data sets and transaction status ([`history`]);
//! * [`is_opaque`] / [`is_strictly_serializable`] — serialization search
//!   with completion enumeration ([`serialization`]);
//! * [`is_progressive`] / [`is_strongly_progressive`] — Definition 1 via
//!   conflict-graph components ([`progress`], [`conflict`]);
//! * [`invisible_reads_violations`] / [`weak_invisible_reads_violations`]
//!   and [`weak_dap_violations`] — log-level read-visibility and memory
//!   race analysis ([`fragments`]);
//! * [`satisfies_mutual_exclusion`] — safety of the Section 5 mutex
//!   reduction ([`mutex_props`]).
//!
//! ## Example
//!
//! ```
//! use ptm_model::{History, is_opaque};
//! use ptm_sim::{LogEntry, LogPayload, Marker, ProcessId, TObjId, TOpDesc, TOpResult, TxId};
//!
//! // A one-transaction history: T1 reads X0 -> 0 and commits.
//! let mut log = Vec::new();
//! let mut push = |pid: usize, m: Marker| {
//!     let seq = log.len();
//!     log.push(LogEntry { seq, pid: ProcessId::new(pid), payload: LogPayload::Marker(m) });
//! };
//! let read = TOpDesc::Read(TObjId::new(0));
//! push(0, Marker::TxInvoke { tx: TxId::new(1), op: read });
//! push(0, Marker::TxResponse { tx: TxId::new(1), op: read, res: TOpResult::Value(0) });
//! push(0, Marker::TxInvoke { tx: TxId::new(1), op: TOpDesc::TryCommit });
//! push(0, Marker::TxResponse { tx: TxId::new(1), op: TOpDesc::TryCommit, res: TOpResult::Committed });
//!
//! let h = History::from_log(&log)?;
//! assert!(is_opaque(&h));
//! # Ok::<(), ptm_model::HistoryError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod conflict;
pub mod fragments;
pub mod history;
pub mod mutex_props;
pub mod progress;
pub mod serialization;

pub use conflict::{
    cobj_of, cobj_of_set, concurrent_conflict, conflict_components, conflict_objects, conflicts,
    disjoint_access,
};
pub use fragments::{
    invisible_reads_violations, op_fragments, tx_fragments, weak_dap_violations,
    weak_invisible_reads_violations, DapViolation, OpFragment, TxFragment,
};
pub use history::{History, HistoryError, TOp, TxRecord, TxStatus};
pub use mutex_props::{
    mutual_exclusion_violations, passages, satisfies_mutual_exclusion, MutexViolation,
};
pub use progress::{
    is_progressive, is_strongly_progressive, progressiveness_violations,
    sequential_progress_violations, strong_progressiveness_violations, ProgressivenessViolation,
    StrongProgressivenessViolation,
};
pub use serialization::{
    completions, find_opaque_serialization, find_strict_serialization, is_legal_serialization,
    is_opaque, is_strictly_serializable, respects_real_time, INITIAL_VALUE,
};
