//! Conflicts, the conflict graph, and disjoint-access parallelism.
//!
//! Two transactions *conflict* on a t-object `X` if both have `X` in their
//! data sets and at least one has it in its write set. Strong
//! progressiveness (Definition 1) quantifies over `CTrans(H)` — sets of
//! transactions closed under conflict — and `CObj_H(Q)`, the objects a set
//! conflicts over; both are computed here from the connected components of
//! the conflict graph.
//!
//! Weak DAP (Attiya–Hillel–Milani) is stated via the graph `G(Ti,Tj,E)`
//! whose vertices are the data sets of transactions concurrent with `Ti`
//! or `Tj` and whose edges connect items appearing in one transaction's
//! data set; `Ti`, `Tj` are *disjoint-access* if no path connects their
//! data sets.

use crate::history::History;
use ptm_sim::{TObjId, TxId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// T-objects on which `a` and `b` conflict: in both data sets, in at least
/// one write set.
///
/// # Panics
///
/// Panics if either transaction is not in the history.
pub fn conflict_objects(h: &History, a: TxId, b: TxId) -> BTreeSet<TObjId> {
    let ta = h.tx(a).expect("transaction in history");
    let tb = h.tx(b).expect("transaction in history");
    let shared: BTreeSet<TObjId> = ta
        .data_set()
        .intersection(&tb.data_set())
        .copied()
        .collect();
    let writes: BTreeSet<TObjId> = ta.write_set().union(&tb.write_set()).copied().collect();
    shared.intersection(&writes).copied().collect()
}

/// Whether `a` and `b` conflict (on any object).
pub fn conflicts(h: &History, a: TxId, b: TxId) -> bool {
    a != b && !conflict_objects(h, a, b).is_empty()
}

/// Whether `a` and `b` are concurrent **and** conflict — the condition
/// under which a progressive TM is allowed to abort one of them.
pub fn concurrent_conflict(h: &History, a: TxId, b: TxId) -> bool {
    a != b && h.concurrent(a, b) && conflicts(h, a, b)
}

/// `CObj_H(Ti)`: the objects over which `Ti` conflicts with *some* other
/// transaction of the history.
pub fn cobj_of(h: &History, t: TxId) -> BTreeSet<TObjId> {
    let mut out = BTreeSet::new();
    for other in h.transactions() {
        if other.id != t {
            out.extend(conflict_objects(h, t, other.id));
        }
    }
    out
}

/// The connected components of the conflict graph over all transactions.
///
/// Every `Q ∈ CTrans(H)` (a non-empty set with no conflict crossing its
/// boundary) is a union of these components, so properties quantified over
/// `CTrans(H)` can be checked component-wise.
pub fn conflict_components(h: &History) -> Vec<BTreeSet<TxId>> {
    let ids: Vec<TxId> = h.transactions().map(|t| t.id).collect();
    let index: BTreeMap<TxId, usize> = ids.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); ids.len()];
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            if conflicts(h, a, b) {
                let j = index[&b];
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    let mut seen = vec![false; ids.len()];
    let mut components = Vec::new();
    for start in 0..ids.len() {
        if seen[start] {
            continue;
        }
        let mut comp = BTreeSet::new();
        let mut queue = VecDeque::from([start]);
        seen[start] = true;
        while let Some(i) = queue.pop_front() {
            comp.insert(ids[i]);
            for &j in &adj[i] {
                if !seen[j] {
                    seen[j] = true;
                    queue.push_back(j);
                }
            }
        }
        components.push(comp);
    }
    components
}

/// `CObj_H(Q)` for a set of transactions: union of per-member `CObj`.
pub fn cobj_of_set(h: &History, q: &BTreeSet<TxId>) -> BTreeSet<TObjId> {
    let mut out = BTreeSet::new();
    for &t in q {
        out.extend(cobj_of(h, t));
    }
    out
}

/// Whether `a` and `b` are *disjoint-access* in the history: no path in
/// `G(Ti,Tj,E)` connects a t-object of `Dset(a)` to one of `Dset(b)`.
///
/// The graph's vertices are the data sets of `τ_E(a,b)` — transactions
/// concurrent to `a` or `b` (including `a`, `b` themselves) — with an edge
/// between two items whenever some such transaction has both in its data
/// set. A shared item between `Dset(a)` and `Dset(b)` is a trivial path.
///
/// # Panics
///
/// Panics if either transaction is not in the history.
pub fn disjoint_access(h: &History, a: TxId, b: TxId) -> bool {
    let mut tau: BTreeSet<TxId> = BTreeSet::from([a, b]);
    for t in h.transactions() {
        if h.concurrent(t.id, a) || h.concurrent(t.id, b) {
            tau.insert(t.id);
        }
    }
    // Union-find over t-objects: items in one transaction's data set are
    // merged into one class.
    let mut objects: BTreeSet<TObjId> = BTreeSet::new();
    for &t in &tau {
        objects.extend(h.tx(t).expect("in history").data_set());
    }
    let ids: Vec<TObjId> = objects.iter().copied().collect();
    let index: BTreeMap<TObjId, usize> = ids.iter().enumerate().map(|(i, &x)| (x, i)).collect();
    let mut parent: Vec<usize> = (0..ids.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    for &t in &tau {
        let dset: Vec<TObjId> = h
            .tx(t)
            .expect("in history")
            .data_set()
            .into_iter()
            .collect();
        for w in dset.windows(2) {
            let (x, y) = (index[&w[0]], index[&w[1]]);
            let (rx, ry) = (find(&mut parent, x), find(&mut parent, y));
            parent[rx] = ry;
        }
    }
    let da = h.tx(a).expect("in history").data_set();
    let db = h.tx(b).expect("in history").data_set();
    for x in &da {
        for y in &db {
            if x == y {
                return false;
            }
            let (rx, ry) = (find(&mut parent, index[x]), find(&mut parent, index[y]));
            if rx == ry {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::testutil::LogBuilder;
    use ptm_sim::{TOpDesc, TOpResult};

    #[test]
    fn conflict_requires_a_writer() {
        let mut b = LogBuilder::new();
        let r = TOpDesc::Read(TObjId::new(0));
        b.invoke(0, 1, r);
        b.invoke(1, 2, r);
        b.respond(0, 1, r, TOpResult::Value(0));
        b.respond(1, 2, r, TOpResult::Value(0));
        b.commit(0, 1);
        b.commit(1, 2);
        let h = b.history();
        // Two concurrent readers of the same object do not conflict.
        assert!(!conflicts(&h, TxId::new(1), TxId::new(2)));
    }

    #[test]
    fn read_write_conflict() {
        let mut b = LogBuilder::new();
        let r = TOpDesc::Read(TObjId::new(0));
        b.invoke(0, 1, r);
        b.write(1, 2, 0, 5);
        b.respond(0, 1, r, TOpResult::Value(0));
        b.commit(1, 2);
        b.commit(0, 1);
        let h = b.history();
        assert!(conflicts(&h, TxId::new(1), TxId::new(2)));
        assert!(concurrent_conflict(&h, TxId::new(1), TxId::new(2)));
        assert_eq!(
            conflict_objects(&h, TxId::new(1), TxId::new(2)),
            BTreeSet::from([TObjId::new(0)])
        );
    }

    #[test]
    fn sequential_writers_conflict_but_not_concurrently() {
        let mut b = LogBuilder::new();
        b.write(0, 1, 0, 1).commit(0, 1);
        b.write(1, 2, 0, 2).commit(1, 2);
        let h = b.history();
        assert!(conflicts(&h, TxId::new(1), TxId::new(2)));
        assert!(!concurrent_conflict(&h, TxId::new(1), TxId::new(2)));
    }

    #[test]
    fn components_group_by_conflict() {
        let mut b = LogBuilder::new();
        // T1, T2 conflict on X0; T3 is alone on X5.
        let r = TOpDesc::Read(TObjId::new(0));
        b.invoke(0, 1, r);
        b.write(1, 2, 0, 5);
        b.respond(0, 1, r, TOpResult::Value(0));
        b.commit(1, 2);
        b.commit(0, 1);
        b.write(2, 3, 5, 1).commit(2, 3);
        let h = b.history();
        let comps = conflict_components(&h);
        assert_eq!(comps.len(), 2);
        let big = comps.iter().find(|c| c.len() == 2).unwrap();
        assert!(big.contains(&TxId::new(1)) && big.contains(&TxId::new(2)));
        assert_eq!(cobj_of_set(&h, big), BTreeSet::from([TObjId::new(0)]));
        let small = comps.iter().find(|c| c.len() == 1).unwrap();
        assert!(cobj_of_set(&h, small).is_empty());
    }

    #[test]
    fn disjoint_access_basic() {
        // T1 on X0, T2 on X1, concurrent, no third transaction: disjoint.
        let mut b = LogBuilder::new();
        let r0 = TOpDesc::Read(TObjId::new(0));
        let r1 = TOpDesc::Read(TObjId::new(1));
        b.invoke(0, 1, r0);
        b.invoke(1, 2, r1);
        b.respond(0, 1, r0, TOpResult::Value(0));
        b.respond(1, 2, r1, TOpResult::Value(0));
        b.commit(0, 1);
        b.commit(1, 2);
        let h = b.history();
        assert!(disjoint_access(&h, TxId::new(1), TxId::new(2)));
    }

    #[test]
    fn overlapping_data_sets_are_not_disjoint() {
        let mut b = LogBuilder::new();
        let r0 = TOpDesc::Read(TObjId::new(0));
        b.invoke(0, 1, r0);
        b.write(1, 2, 0, 3);
        b.respond(0, 1, r0, TOpResult::Value(0));
        b.commit(1, 2);
        b.commit(0, 1);
        let h = b.history();
        assert!(!disjoint_access(&h, TxId::new(1), TxId::new(2)));
    }

    #[test]
    fn bridging_transaction_connects_data_sets() {
        // T1 on {X0}, T2 on {X2}, and a concurrent T3 on {X0, X2}
        // bridging them: not disjoint-access.
        let mut b = LogBuilder::new();
        let r0 = TOpDesc::Read(TObjId::new(0));
        let r2 = TOpDesc::Read(TObjId::new(2));
        b.invoke(0, 1, r0);
        b.invoke(1, 2, r2);
        // T3 concurrent with both, touching X0 and X2.
        b.invoke(2, 3, TOpDesc::Write(TObjId::new(0), 1));
        b.respond(2, 3, TOpDesc::Write(TObjId::new(0), 1), TOpResult::Ok);
        b.write(2, 3, 2, 1);
        b.respond(0, 1, r0, TOpResult::Value(0));
        b.respond(1, 2, r2, TOpResult::Value(0));
        b.commit(2, 3);
        b.commit(0, 1);
        b.commit(1, 2);
        let h = b.history();
        assert!(!disjoint_access(&h, TxId::new(1), TxId::new(2)));
    }

    #[test]
    fn non_concurrent_bridge_does_not_connect() {
        // Same as above but the bridge T3 runs strictly before both:
        // it is not in τ(T1,T2), so T1 and T2 stay disjoint-access.
        let mut b = LogBuilder::new();
        b.write(2, 3, 0, 1).write(2, 3, 2, 1).commit(2, 3);
        let r0 = TOpDesc::Read(TObjId::new(0));
        let r2 = TOpDesc::Read(TObjId::new(2));
        b.invoke(0, 1, r0);
        b.invoke(1, 2, r2);
        b.respond(0, 1, r0, TOpResult::Value(1));
        b.respond(1, 2, r2, TOpResult::Value(1));
        b.commit(0, 1);
        b.commit(1, 2);
        let h = b.history();
        assert!(disjoint_access(&h, TxId::new(1), TxId::new(2)));
    }
}
