//! TM histories reconstructed from the simulator's execution log.
//!
//! A *history* (Section 2 of the paper) is the subsequence of an execution
//! consisting of the invocation and response events of t-operations. The
//! simulator logs those as [`Marker`]s; this module parses them into
//! per-transaction records, validates well-formedness (processes issue
//! transactions sequentially, operations are matched invocation/response
//! pairs, nothing follows `A_k`/`C_k`), and exposes the derived notions the
//! paper builds on: read/write/data sets, transaction status, real-time
//! order and concurrency.

use ptm_sim::{LogEntry, Marker, ProcessId, TObjId, TOpDesc, TOpResult, TxId, Word};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A completed t-operation: a matching invocation/response pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TOp {
    /// What was invoked.
    pub desc: TOpDesc,
    /// What it returned.
    pub result: TOpResult,
    /// Log sequence number of the invocation marker.
    pub invoke_seq: usize,
    /// Log sequence number of the response marker.
    pub response_seq: usize,
}

impl TOp {
    /// Whether the operation returned `A_k`.
    pub fn aborted(&self) -> bool {
        self.result == TOpResult::Aborted
    }
}

/// Completion status of a transaction within a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    /// `tryC` returned `C_k`.
    Committed,
    /// Some operation returned `A_k`.
    Aborted,
    /// `tryC` was invoked but has not returned.
    CommitPending,
    /// The transaction is live (not t-complete, no pending `tryC`).
    Live,
}

/// Everything a history knows about one transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxRecord {
    /// The transaction id.
    pub id: TxId,
    /// The process executing it (processes issue transactions
    /// sequentially).
    pub pid: ProcessId,
    /// Matched operations, in issue order.
    pub ops: Vec<TOp>,
    /// An invoked-but-unanswered operation, if any.
    pub pending: Option<(TOpDesc, usize)>,
}

impl TxRecord {
    /// Completion status.
    pub fn status(&self) -> TxStatus {
        if let Some(last) = self.ops.last() {
            match last.result {
                TOpResult::Committed => return TxStatus::Committed,
                TOpResult::Aborted => return TxStatus::Aborted,
                _ => {}
            }
        }
        match self.pending {
            Some((TOpDesc::TryCommit, _)) => TxStatus::CommitPending,
            _ => TxStatus::Live,
        }
    }

    /// Whether the transaction is t-complete (ends with `A_k` or `C_k`).
    pub fn t_complete(&self) -> bool {
        matches!(self.status(), TxStatus::Committed | TxStatus::Aborted)
    }

    /// The read set: t-objects on which a read was *invoked*.
    pub fn read_set(&self) -> BTreeSet<TObjId> {
        let mut s: BTreeSet<TObjId> = self
            .ops
            .iter()
            .filter_map(|op| match op.desc {
                TOpDesc::Read(x) => Some(x),
                _ => None,
            })
            .collect();
        if let Some((TOpDesc::Read(x), _)) = self.pending {
            s.insert(x);
        }
        s
    }

    /// The write set: t-objects on which a write was *invoked*.
    pub fn write_set(&self) -> BTreeSet<TObjId> {
        let mut s: BTreeSet<TObjId> = self
            .ops
            .iter()
            .filter_map(|op| match op.desc {
                TOpDesc::Write(x, _) => Some(x),
                _ => None,
            })
            .collect();
        if let Some((TOpDesc::Write(x, _), _)) = self.pending {
            s.insert(x);
        }
        s
    }

    /// The data set: union of read and write sets.
    pub fn data_set(&self) -> BTreeSet<TObjId> {
        let mut s = self.read_set();
        s.extend(self.write_set());
        s
    }

    /// Whether the transaction is read-only (empty write set).
    pub fn is_read_only(&self) -> bool {
        self.write_set().is_empty()
    }

    /// Whether the transaction is updating (non-empty write set).
    pub fn is_updating(&self) -> bool {
        !self.write_set().is_empty()
    }

    /// Log sequence number of the transaction's first event.
    pub fn first_seq(&self) -> usize {
        self.ops
            .first()
            .map(|op| op.invoke_seq)
            .or(self.pending.map(|(_, s)| s))
            .expect("a transaction has at least one event")
    }

    /// Log sequence number of the transaction's last event so far.
    pub fn last_seq(&self) -> usize {
        self.pending
            .map(|(_, s)| s)
            .or(self.ops.last().map(|op| op.response_seq))
            .expect("a transaction has at least one event")
    }

    /// The value this transaction would install for `x` if it commits:
    /// its last write to `x`, if any.
    pub fn last_write_to(&self, x: TObjId) -> Option<Word> {
        self.ops.iter().rev().find_map(|op| match op.desc {
            TOpDesc::Write(y, v) if y == x => Some(v),
            _ => None,
        })
    }
}

/// Ways a log can fail to parse into a well-formed history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryError {
    /// A response arrived with no matching pending invocation.
    UnmatchedResponse(TxId, usize),
    /// A response did not match the pending operation's description.
    MismatchedResponse(TxId, usize),
    /// An operation was invoked while another was pending in the same
    /// transaction.
    OverlappingOps(TxId, usize),
    /// A process started a new transaction before its previous one was
    /// t-complete.
    OverlappingTxs(ProcessId, TxId, usize),
    /// A transaction id was reused by a different process.
    TxOnTwoProcesses(TxId, usize),
    /// An operation was issued after the transaction ended with `A`/`C`.
    OpAfterEnd(TxId, usize),
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::UnmatchedResponse(t, s) => {
                write!(
                    f,
                    "response for {t} at log seq {s} has no pending invocation"
                )
            }
            HistoryError::MismatchedResponse(t, s) => {
                write!(
                    f,
                    "response for {t} at log seq {s} does not match the pending op"
                )
            }
            HistoryError::OverlappingOps(t, s) => {
                write!(
                    f,
                    "{t} invoked an operation at log seq {s} while one was pending"
                )
            }
            HistoryError::OverlappingTxs(p, t, s) => {
                write!(
                    f,
                    "{p} started {t} at log seq {s} before its previous transaction completed"
                )
            }
            HistoryError::TxOnTwoProcesses(t, s) => {
                write!(f, "{t} at log seq {s} spans two processes")
            }
            HistoryError::OpAfterEnd(t, s) => {
                write!(
                    f,
                    "{t} issued an operation at log seq {s} after committing/aborting"
                )
            }
        }
    }
}

impl std::error::Error for HistoryError {}

/// A parsed TM history.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    txs: BTreeMap<TxId, TxRecord>,
}

impl History {
    /// Parses the t-operation markers out of an execution log.
    ///
    /// # Errors
    ///
    /// Returns a [`HistoryError`] if the markers do not form a well-formed
    /// history (see the error variants).
    pub fn from_log(log: &[LogEntry]) -> Result<History, HistoryError> {
        let mut txs: BTreeMap<TxId, TxRecord> = BTreeMap::new();
        // Last transaction id per process, to enforce sequential issue.
        let mut current: BTreeMap<ProcessId, TxId> = BTreeMap::new();

        for entry in log {
            let Some(marker) = entry.marker() else {
                continue;
            };
            match *marker {
                Marker::TxInvoke { tx, op } => {
                    if let Some(rec) = txs.get(&tx) {
                        if rec.pid != entry.pid {
                            return Err(HistoryError::TxOnTwoProcesses(tx, entry.seq));
                        }
                        if rec.t_complete() {
                            return Err(HistoryError::OpAfterEnd(tx, entry.seq));
                        }
                        if rec.pending.is_some() {
                            return Err(HistoryError::OverlappingOps(tx, entry.seq));
                        }
                    } else {
                        if let Some(prev) = current.get(&entry.pid) {
                            if !txs[prev].t_complete() {
                                return Err(HistoryError::OverlappingTxs(entry.pid, tx, entry.seq));
                            }
                        }
                        current.insert(entry.pid, tx);
                        txs.insert(
                            tx,
                            TxRecord {
                                id: tx,
                                pid: entry.pid,
                                ops: Vec::new(),
                                pending: None,
                            },
                        );
                    }
                    txs.get_mut(&tx).expect("inserted above").pending = Some((op, entry.seq));
                }
                Marker::TxResponse { tx, op, res } => {
                    let rec = txs
                        .get_mut(&tx)
                        .ok_or(HistoryError::UnmatchedResponse(tx, entry.seq))?;
                    let Some((pending_op, invoke_seq)) = rec.pending.take() else {
                        return Err(HistoryError::UnmatchedResponse(tx, entry.seq));
                    };
                    if pending_op != op {
                        return Err(HistoryError::MismatchedResponse(tx, entry.seq));
                    }
                    rec.ops.push(TOp {
                        desc: op,
                        result: res,
                        invoke_seq,
                        response_seq: entry.seq,
                    });
                }
                _ => {}
            }
        }
        Ok(History { txs })
    }

    /// The transactions participating in the history, in id order.
    pub fn transactions(&self) -> impl Iterator<Item = &TxRecord> {
        self.txs.values()
    }

    /// Looks up one transaction.
    pub fn tx(&self, id: TxId) -> Option<&TxRecord> {
        self.txs.get(&id)
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Whether the history has no transactions.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Ids of committed transactions.
    pub fn committed(&self) -> Vec<TxId> {
        self.txs
            .values()
            .filter(|t| t.status() == TxStatus::Committed)
            .map(|t| t.id)
            .collect()
    }

    /// Ids of aborted transactions.
    pub fn aborted(&self) -> Vec<TxId> {
        self.txs
            .values()
            .filter(|t| t.status() == TxStatus::Aborted)
            .map(|t| t.id)
            .collect()
    }

    /// Whether every transaction is t-complete.
    pub fn is_complete(&self) -> bool {
        self.txs.values().all(TxRecord::t_complete)
    }

    /// Real-time order: `a ≺ b` iff `a` is t-complete and its last event
    /// precedes `b`'s first event.
    ///
    /// # Panics
    ///
    /// Panics if either transaction is not in the history.
    pub fn precedes(&self, a: TxId, b: TxId) -> bool {
        let ta = &self.txs[&a];
        let tb = &self.txs[&b];
        ta.t_complete() && ta.last_seq() < tb.first_seq()
    }

    /// Whether two transactions are concurrent (neither precedes the
    /// other).
    ///
    /// # Panics
    ///
    /// Panics if either transaction is not in the history.
    pub fn concurrent(&self, a: TxId, b: TxId) -> bool {
        a != b && !self.precedes(a, b) && !self.precedes(b, a)
    }

    /// Transactions concurrent with `t`.
    pub fn concurrent_with(&self, t: TxId) -> Vec<TxId> {
        self.txs
            .keys()
            .copied()
            .filter(|&o| o != t && self.concurrent(t, o))
            .collect()
    }

    /// Whether `t` runs with no concurrent transaction at all — the
    /// hypothesis of *weak invisible reads*.
    pub fn is_isolated(&self, t: TxId) -> bool {
        self.concurrent_with(t).is_empty()
    }

    /// Crate-internal mutable access, used to synthesize completions.
    pub(crate) fn txs_mut(&mut self) -> &mut BTreeMap<TxId, TxRecord> {
        &mut self.txs
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Hand-construction of histories for checker tests, without a
    //! simulator run: a tiny builder that produces the same marker stream
    //! a simulated execution would.

    use super::*;
    use ptm_sim::{LogPayload, Marker};

    /// Builds a synthetic marker log.
    #[derive(Debug, Default)]
    pub struct LogBuilder {
        log: Vec<LogEntry>,
    }

    impl LogBuilder {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn push(&mut self, pid: usize, marker: Marker) -> &mut Self {
            let seq = self.log.len();
            self.log.push(LogEntry {
                seq,
                pid: ProcessId::new(pid),
                payload: LogPayload::Marker(marker),
            });
            self
        }

        pub fn invoke(&mut self, pid: usize, tx: u64, op: TOpDesc) -> &mut Self {
            self.push(
                pid,
                Marker::TxInvoke {
                    tx: TxId::new(tx),
                    op,
                },
            )
        }

        pub fn respond(&mut self, pid: usize, tx: u64, op: TOpDesc, res: TOpResult) -> &mut Self {
            self.push(
                pid,
                Marker::TxResponse {
                    tx: TxId::new(tx),
                    op,
                    res,
                },
            )
        }

        /// Complete read: invocation immediately followed by response.
        pub fn read(&mut self, pid: usize, tx: u64, x: usize, v: Word) -> &mut Self {
            let op = TOpDesc::Read(TObjId::new(x));
            self.invoke(pid, tx, op)
                .respond(pid, tx, op, TOpResult::Value(v))
        }

        /// Complete write returning ok.
        pub fn write(&mut self, pid: usize, tx: u64, x: usize, v: Word) -> &mut Self {
            let op = TOpDesc::Write(TObjId::new(x), v);
            self.invoke(pid, tx, op).respond(pid, tx, op, TOpResult::Ok)
        }

        /// Complete tryC returning commit.
        pub fn commit(&mut self, pid: usize, tx: u64) -> &mut Self {
            self.invoke(pid, tx, TOpDesc::TryCommit).respond(
                pid,
                tx,
                TOpDesc::TryCommit,
                TOpResult::Committed,
            )
        }

        /// Complete tryC returning abort.
        pub fn abort(&mut self, pid: usize, tx: u64) -> &mut Self {
            self.invoke(pid, tx, TOpDesc::TryCommit).respond(
                pid,
                tx,
                TOpDesc::TryCommit,
                TOpResult::Aborted,
            )
        }

        pub fn build(&self) -> Vec<LogEntry> {
            self.log.clone()
        }

        pub fn history(&self) -> History {
            History::from_log(&self.log).expect("well-formed synthetic log")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::LogBuilder;
    use super::*;

    #[test]
    fn parses_committed_and_aborted() {
        let mut b = LogBuilder::new();
        b.read(0, 1, 0, 0).write(0, 1, 1, 5).commit(0, 1);
        b.read(1, 2, 0, 0).abort(1, 2);
        let h = b.history();
        assert_eq!(h.len(), 2);
        assert_eq!(h.tx(TxId::new(1)).unwrap().status(), TxStatus::Committed);
        assert_eq!(h.tx(TxId::new(2)).unwrap().status(), TxStatus::Aborted);
        assert_eq!(h.committed(), vec![TxId::new(1)]);
        assert_eq!(h.aborted(), vec![TxId::new(2)]);
        assert!(h.is_complete());
    }

    #[test]
    fn sets_and_kinds() {
        let mut b = LogBuilder::new();
        b.read(0, 1, 0, 0)
            .read(0, 1, 1, 0)
            .write(0, 1, 2, 9)
            .commit(0, 1);
        let h = b.history();
        let t = h.tx(TxId::new(1)).unwrap();
        assert_eq!(t.read_set().len(), 2);
        assert_eq!(t.write_set().len(), 1);
        assert_eq!(t.data_set().len(), 3);
        assert!(t.is_updating());
        assert!(!t.is_read_only());
        assert_eq!(t.last_write_to(TObjId::new(2)), Some(9));
        assert_eq!(t.last_write_to(TObjId::new(0)), None);
    }

    #[test]
    fn real_time_order_sequential() {
        let mut b = LogBuilder::new();
        b.read(0, 1, 0, 0).commit(0, 1);
        b.read(1, 2, 0, 0).commit(1, 2);
        let h = b.history();
        assert!(h.precedes(TxId::new(1), TxId::new(2)));
        assert!(!h.precedes(TxId::new(2), TxId::new(1)));
        assert!(!h.concurrent(TxId::new(1), TxId::new(2)));
        assert!(h.is_isolated(TxId::new(1)));
    }

    #[test]
    fn real_time_order_concurrent() {
        let mut b = LogBuilder::new();
        let r0 = TOpDesc::Read(TObjId::new(0));
        b.invoke(0, 1, r0);
        b.invoke(1, 2, r0);
        b.respond(0, 1, r0, TOpResult::Value(0));
        b.respond(1, 2, r0, TOpResult::Value(0));
        b.commit(0, 1);
        b.commit(1, 2);
        let h = b.history();
        assert!(h.concurrent(TxId::new(1), TxId::new(2)));
        assert!(!h.is_isolated(TxId::new(1)));
        assert_eq!(h.concurrent_with(TxId::new(1)), vec![TxId::new(2)]);
    }

    #[test]
    fn live_and_commit_pending_status() {
        let mut b = LogBuilder::new();
        b.read(0, 1, 0, 0);
        b.invoke(0, 1, TOpDesc::TryCommit);
        let h = b.history();
        assert_eq!(
            h.tx(TxId::new(1)).unwrap().status(),
            TxStatus::CommitPending
        );
        assert!(!h.is_complete());

        let mut b2 = LogBuilder::new();
        b2.read(0, 1, 0, 0);
        let h2 = b2.history();
        assert_eq!(h2.tx(TxId::new(1)).unwrap().status(), TxStatus::Live);
    }

    #[test]
    fn pending_ops_count_in_data_sets() {
        let mut b = LogBuilder::new();
        b.invoke(0, 1, TOpDesc::Read(TObjId::new(3)));
        let h = b.history();
        assert!(h
            .tx(TxId::new(1))
            .unwrap()
            .read_set()
            .contains(&TObjId::new(3)));
    }

    #[test]
    fn rejects_overlapping_ops_in_one_tx() {
        let mut b = LogBuilder::new();
        b.invoke(0, 1, TOpDesc::Read(TObjId::new(0)));
        b.invoke(0, 1, TOpDesc::Read(TObjId::new(1)));
        assert!(matches!(
            History::from_log(&b.build()),
            Err(HistoryError::OverlappingOps(..))
        ));
    }

    #[test]
    fn rejects_overlapping_txs_on_one_process() {
        let mut b = LogBuilder::new();
        b.read(0, 1, 0, 0); // T1 not t-complete
        b.invoke(0, 2, TOpDesc::Read(TObjId::new(0)));
        assert!(matches!(
            History::from_log(&b.build()),
            Err(HistoryError::OverlappingTxs(..))
        ));
    }

    #[test]
    fn rejects_tx_spanning_processes() {
        let mut b = LogBuilder::new();
        b.read(0, 1, 0, 0);
        b.invoke(1, 1, TOpDesc::Read(TObjId::new(1)));
        assert!(matches!(
            History::from_log(&b.build()),
            Err(HistoryError::TxOnTwoProcesses(..))
        ));
    }

    #[test]
    fn rejects_unmatched_response() {
        let mut b = LogBuilder::new();
        b.respond(0, 1, TOpDesc::TryCommit, TOpResult::Committed);
        assert!(matches!(
            History::from_log(&b.build()),
            Err(HistoryError::UnmatchedResponse(..))
        ));
    }

    #[test]
    fn rejects_op_after_commit() {
        let mut b = LogBuilder::new();
        b.commit(0, 1);
        b.invoke(0, 1, TOpDesc::Read(TObjId::new(0)));
        assert!(matches!(
            History::from_log(&b.build()),
            Err(HistoryError::OpAfterEnd(..))
        ));
    }

    #[test]
    fn rejects_mismatched_response() {
        let mut b = LogBuilder::new();
        b.invoke(0, 1, TOpDesc::Read(TObjId::new(0)));
        b.respond(0, 1, TOpDesc::Read(TObjId::new(1)), TOpResult::Value(0));
        assert!(matches!(
            History::from_log(&b.build()),
            Err(HistoryError::MismatchedResponse(..))
        ));
    }
}
