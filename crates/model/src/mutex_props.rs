//! Mutual-exclusion safety checking over execution logs.
//!
//! Section 5's reduction produces a mutex object; its *mutual exclusion*
//! property ("after any execution at most one process is in the critical
//! section") is checked directly from the `MutexInvoke`/`MutexResponse`
//! markers: a process is in the critical section from the response of its
//! `Enter` to the invocation of its subsequent `Exit`.

use ptm_sim::{LogEntry, LogPayload, Marker, MutexOp, ProcessId};
use std::collections::BTreeSet;

/// A mutual-exclusion violation: two processes simultaneously in the
/// critical section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutexViolation {
    /// The process already in the critical section.
    pub holder: ProcessId,
    /// The process that entered while `holder` was inside.
    pub intruder: ProcessId,
    /// Log sequence number of the violating `Enter` response.
    pub seq: usize,
}

/// Scans the log for mutual-exclusion violations.
pub fn mutual_exclusion_violations(log: &[LogEntry]) -> Vec<MutexViolation> {
    let mut in_cs: BTreeSet<ProcessId> = BTreeSet::new();
    let mut out = Vec::new();
    for entry in log {
        let LogPayload::Marker(marker) = &entry.payload else {
            continue;
        };
        match marker {
            Marker::MutexResponse { op: MutexOp::Enter } => {
                if let Some(&holder) = in_cs.iter().next() {
                    out.push(MutexViolation {
                        holder,
                        intruder: entry.pid,
                        seq: entry.seq,
                    });
                }
                in_cs.insert(entry.pid);
            }
            Marker::MutexInvoke { op: MutexOp::Exit } => {
                in_cs.remove(&entry.pid);
            }
            _ => {}
        }
    }
    out
}

/// Whether the log satisfies mutual exclusion.
pub fn satisfies_mutual_exclusion(log: &[LogEntry]) -> bool {
    mutual_exclusion_violations(log).is_empty()
}

/// Number of completed critical-section passages per process
/// (`Enter` responses observed).
pub fn passages(log: &[LogEntry], n_processes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_processes];
    for entry in log {
        if let LogPayload::Marker(Marker::MutexResponse { op: MutexOp::Enter }) = entry.payload {
            counts[entry.pid.index()] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marker_entry(seq: usize, pid: usize, marker: Marker) -> LogEntry {
        LogEntry {
            seq,
            pid: ProcessId::new(pid),
            payload: LogPayload::Marker(marker),
        }
    }

    #[test]
    fn disjoint_critical_sections_pass() {
        let log = vec![
            marker_entry(0, 0, Marker::MutexInvoke { op: MutexOp::Enter }),
            marker_entry(1, 0, Marker::MutexResponse { op: MutexOp::Enter }),
            marker_entry(2, 0, Marker::MutexInvoke { op: MutexOp::Exit }),
            marker_entry(3, 0, Marker::MutexResponse { op: MutexOp::Exit }),
            marker_entry(4, 1, Marker::MutexInvoke { op: MutexOp::Enter }),
            marker_entry(5, 1, Marker::MutexResponse { op: MutexOp::Enter }),
            marker_entry(6, 1, Marker::MutexInvoke { op: MutexOp::Exit }),
        ];
        assert!(satisfies_mutual_exclusion(&log));
        assert_eq!(passages(&log, 2), vec![1, 1]);
    }

    #[test]
    fn overlapping_critical_sections_fail() {
        let log = vec![
            marker_entry(0, 0, Marker::MutexResponse { op: MutexOp::Enter }),
            marker_entry(1, 1, Marker::MutexResponse { op: MutexOp::Enter }),
        ];
        let v = mutual_exclusion_violations(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].holder, ProcessId::new(0));
        assert_eq!(v[0].intruder, ProcessId::new(1));
    }

    #[test]
    fn enter_while_other_exiting_is_ok() {
        // The CS ends at Exit *invocation*; entering right after that
        // invocation (before the Exit response) is allowed.
        let log = vec![
            marker_entry(0, 0, Marker::MutexResponse { op: MutexOp::Enter }),
            marker_entry(1, 0, Marker::MutexInvoke { op: MutexOp::Exit }),
            marker_entry(2, 1, Marker::MutexResponse { op: MutexOp::Enter }),
            marker_entry(3, 0, Marker::MutexResponse { op: MutexOp::Exit }),
        ];
        assert!(satisfies_mutual_exclusion(&log));
    }
}
