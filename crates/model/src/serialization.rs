//! Legality, opacity, and strict serializability.
//!
//! Section 3 of the paper: a t-sequential execution is *legal* if every
//! t-read returns the latest written value of the item; a finite history is
//! **opaque** if *some completion* of it is equivalent to a legal
//! t-complete t-sequential history `S` that respects the real-time order,
//! and **strictly serializable** if the same holds for the subsequence of
//! committed transactions (`cseq` of a completion).
//!
//! Both checks are genuinely search problems (opacity checking is
//! NP-complete in general); this module implements a backtracking search
//! over serialization orders with real-time-order pruning and memoization
//! on (placed-set, committed-state) pairs, which is plenty for the
//! execution sizes our tests and experiments produce.

use crate::history::{History, TOp, TxRecord, TxStatus};
use ptm_sim::{TObjId, TOpDesc, TOpResult, TxId, Word};
use std::collections::{BTreeMap, HashSet};

/// Default initial value of every t-object (matches the simulator TMs).
pub const INITIAL_VALUE: Word = 0;

/// Replays one transaction's operations against the committed state,
/// checking read legality. Returns the transaction's write overlay if the
/// replay is legal, `None` otherwise.
fn replay_tx(tx: &TxRecord, state: &BTreeMap<TObjId, Word>) -> Option<BTreeMap<TObjId, Word>> {
    let mut local: BTreeMap<TObjId, Word> = BTreeMap::new();
    for op in &tx.ops {
        match (op.desc, op.result) {
            (TOpDesc::Read(x), TOpResult::Value(v)) => {
                let expected = local
                    .get(&x)
                    .or_else(|| state.get(&x))
                    .copied()
                    .unwrap_or(INITIAL_VALUE);
                if v != expected {
                    return None;
                }
            }
            (TOpDesc::Read(_), TOpResult::Aborted) => {
                // A t-read returning A_k is unconstrained.
            }
            (TOpDesc::Write(x, v), TOpResult::Ok) => {
                local.insert(x, v);
            }
            (TOpDesc::Write(_, _), TOpResult::Aborted) => {}
            (TOpDesc::TryCommit, _) => {}
            // Any other combination is a malformed history; treat as
            // illegal rather than panic so checkers degrade gracefully.
            _ => return None,
        }
    }
    Some(local)
}

/// Checks that the given total `order` of transactions is a legal
/// serialization of `h`: reads see the latest committed writes (or their
/// own), and only committed transactions' writes take effect.
///
/// `order` must contain each transaction at most once; transactions of `h`
/// not in `order` are simply ignored (used by strict serializability,
/// which orders only committed transactions).
pub fn is_legal_serialization(h: &History, order: &[TxId]) -> bool {
    let mut state: BTreeMap<TObjId, Word> = BTreeMap::new();
    for &id in order {
        let Some(tx) = h.tx(id) else { return false };
        let Some(overlay) = replay_tx(tx, &state) else {
            return false;
        };
        if tx.status() == TxStatus::Committed {
            state.extend(overlay);
        }
    }
    true
}

/// Checks that `order` respects the real-time order of `h` restricted to
/// the transactions it contains.
pub fn respects_real_time(h: &History, order: &[TxId]) -> bool {
    for (i, &a) in order.iter().enumerate() {
        for &b in &order[..i] {
            // b placed before a: require NOT a ≺ b.
            if h.precedes(a, b) {
                return false;
            }
        }
    }
    true
}

/// Backtracking search for a legal total order of `candidates` that
/// respects real-time order. Returns a witness order if one exists.
fn search_serialization(h: &History, candidates: &[TxId]) -> Option<Vec<TxId>> {
    let n = candidates.len();
    assert!(
        n <= 128,
        "serialization search supports at most 128 transactions"
    );
    // pred_mask[i]: transactions (by candidate index) that must precede i.
    let mut pred_mask = vec![0u128; n];
    for (i, &a) in candidates.iter().enumerate() {
        for (j, &b) in candidates.iter().enumerate() {
            if i != j && h.precedes(b, a) {
                pred_mask[i] |= 1 << j;
            }
        }
    }

    struct Dfs<'a> {
        h: &'a History,
        candidates: &'a [TxId],
        pred_mask: Vec<u128>,
        failed: HashSet<(u128, Vec<(TObjId, Word)>)>,
    }

    impl Dfs<'_> {
        fn go(
            &mut self,
            placed: u128,
            state: &BTreeMap<TObjId, Word>,
            order: &mut Vec<TxId>,
        ) -> bool {
            let n = self.candidates.len();
            if order.len() == n {
                return true;
            }
            let key = (
                placed,
                state.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>(),
            );
            if self.failed.contains(&key) {
                return false;
            }
            for i in 0..n {
                if placed & (1 << i) != 0 || self.pred_mask[i] & !placed != 0 {
                    continue;
                }
                let tx = self.h.tx(self.candidates[i]).expect("candidate in history");
                if let Some(overlay) = replay_tx(tx, state) {
                    order.push(tx.id);
                    let committed = tx.status() == TxStatus::Committed;
                    if committed && !overlay.is_empty() {
                        let mut next = state.clone();
                        next.extend(overlay);
                        if self.go(placed | (1 << i), &next, order) {
                            return true;
                        }
                    } else if self.go(placed | (1 << i), state, order) {
                        return true;
                    }
                    order.pop();
                }
            }
            self.failed.insert(key);
            false
        }
    }

    let mut dfs = Dfs {
        h,
        candidates,
        pred_mask,
        failed: HashSet::new(),
    };
    let mut order = Vec::with_capacity(n);
    if dfs.go(0, &BTreeMap::new(), &mut order) {
        Some(order)
    } else {
        None
    }
}

/// All completions of `h`: live transactions are aborted; commit-pending
/// transactions are either committed or aborted (both variants generated).
///
/// Synthetic responses are appended "at the end of the history" (fresh
/// sequence numbers past every real event), which is exactly what a
/// completion means for the real-time order.
pub fn completions(h: &History) -> Vec<History> {
    let incomplete: Vec<TxId> = h
        .transactions()
        .filter(|t| !t.t_complete())
        .map(|t| t.id)
        .collect();
    if incomplete.is_empty() {
        return vec![h.clone()];
    }
    let commit_pending: Vec<TxId> = incomplete
        .iter()
        .copied()
        .filter(|&id| h.tx(id).expect("listed").status() == TxStatus::CommitPending)
        .collect();

    let max_seq = h.transactions().map(TxRecord::last_seq).max().unwrap_or(0);

    let mut out = Vec::new();
    // Enumerate commit/abort choices for commit-pending transactions.
    for choice in 0..(1u32 << commit_pending.len()) {
        let mut variant = h.clone();
        let mut next_seq = max_seq + 1;
        for &id in &incomplete {
            let commit = commit_pending
                .iter()
                .position(|&c| c == id)
                .is_some_and(|k| choice & (1 << k) != 0);
            let rec = variant
                .tx_mut(id)
                .expect("transaction listed as incomplete");
            let (desc, invoke_seq) = match rec.pending.take() {
                Some((d, s)) => (d, s),
                None => {
                    // Live between operations: append a tryC that aborts.
                    let s = next_seq;
                    next_seq += 1;
                    (TOpDesc::TryCommit, s)
                }
            };
            let result = if commit && desc == TOpDesc::TryCommit {
                TOpResult::Committed
            } else {
                TOpResult::Aborted
            };
            rec.ops.push(TOp {
                desc,
                result,
                invoke_seq,
                response_seq: next_seq,
            });
            next_seq += 1;
        }
        out.push(variant);
    }
    out
}

/// Finds an opaque serialization of a completion of `h`: a legal total
/// order of **all** transactions respecting real-time order. Returns the
/// witness order if one exists.
pub fn find_opaque_serialization(h: &History) -> Option<Vec<TxId>> {
    completions(h).iter().find_map(|c| {
        let all: Vec<TxId> = c.transactions().map(|t| t.id).collect();
        search_serialization(c, &all)
    })
}

/// Whether `h` is opaque.
pub fn is_opaque(h: &History) -> bool {
    find_opaque_serialization(h).is_some()
}

/// Finds a strictly serializable serialization of `h`: a legal total order
/// of the **committed** transactions of some completion, respecting
/// real-time order. Returns the witness order if one exists.
pub fn find_strict_serialization(h: &History) -> Option<Vec<TxId>> {
    completions(h).iter().find_map(|c| {
        let committed: Vec<TxId> = c.committed();
        search_serialization(c, &committed)
    })
}

/// Whether `h` is strictly serializable.
pub fn is_strictly_serializable(h: &History) -> bool {
    find_strict_serialization(h).is_some()
}

impl History {
    /// Mutable access to a transaction record, for building completions.
    pub(crate) fn tx_mut(&mut self, id: TxId) -> Option<&mut TxRecord> {
        self.txs_mut().get_mut(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::testutil::LogBuilder;

    #[test]
    fn sequential_history_is_opaque() {
        let mut b = LogBuilder::new();
        b.write(0, 1, 0, 5).commit(0, 1);
        b.read(1, 2, 0, 5).commit(1, 2);
        let h = b.history();
        let s = find_opaque_serialization(&h).expect("opaque");
        assert_eq!(s, vec![TxId::new(1), TxId::new(2)]);
        assert!(is_strictly_serializable(&h));
    }

    #[test]
    fn stale_read_after_commit_is_not_serializable() {
        let mut b = LogBuilder::new();
        b.write(0, 1, 0, 5).commit(0, 1);
        // T2 starts after T1 committed but reads the initial value.
        b.read(1, 2, 0, 0).commit(1, 2);
        let h = b.history();
        assert!(!is_strictly_serializable(&h));
        assert!(!is_opaque(&h));
    }

    #[test]
    fn lost_update_is_not_serializable() {
        // Two concurrent increments both read 0 and commit.
        let mut b = LogBuilder::new();
        let r = TOpDesc::Read(TObjId::new(0));
        b.invoke(0, 1, r);
        b.invoke(1, 2, r);
        b.respond(0, 1, r, TOpResult::Value(0));
        b.respond(1, 2, r, TOpResult::Value(0));
        b.write(0, 1, 0, 1);
        b.write(1, 2, 0, 2);
        b.commit(0, 1);
        b.commit(1, 2);
        let h = b.history();
        assert!(!is_strictly_serializable(&h));
    }

    #[test]
    fn aborted_inconsistent_read_violates_opacity_only() {
        // T2 (concurrent with T1) reads x=0, then T1 writes x=1,y=1 and
        // commits, then T2 reads y=1 and aborts: strictly serializable
        // (T2 is aborted) but not opaque (no position for T2 sees x=0,y=1).
        let mut b = LogBuilder::new();
        b.read(1, 2, 0, 0); // T2: read x -> 0
        b.write(0, 1, 0, 1).write(0, 1, 1, 1).commit(0, 1); // T1 commits x=1,y=1
        b.read(1, 2, 1, 1); // T2: read y -> 1 (inconsistent with x=0)
        b.abort(1, 2);
        let h = b.history();
        assert!(is_strictly_serializable(&h));
        assert!(!is_opaque(&h));
    }

    #[test]
    fn read_own_write() {
        let mut b = LogBuilder::new();
        b.write(0, 1, 0, 7).read(0, 1, 0, 7).commit(0, 1);
        let h = b.history();
        assert!(is_opaque(&h));
    }

    #[test]
    fn aborted_writes_are_invisible() {
        let mut b = LogBuilder::new();
        b.write(0, 1, 0, 9).abort(0, 1);
        b.read(1, 2, 0, 0).commit(1, 2);
        let h = b.history();
        assert!(is_opaque(&h));

        // If T2 saw the aborted write instead, the history is not opaque.
        let mut b2 = LogBuilder::new();
        b2.write(0, 1, 0, 9).abort(0, 1);
        b2.read(1, 2, 0, 9).commit(1, 2);
        assert!(!is_opaque(&b2.history()));
    }

    #[test]
    fn real_time_order_is_enforced() {
        // T1 and T2 are sequential; a serialization reversing them is
        // rejected even though it would be legal value-wise.
        let mut b = LogBuilder::new();
        b.read(0, 1, 0, 0).commit(0, 1);
        b.read(1, 2, 1, 0).commit(1, 2);
        let h = b.history();
        assert!(respects_real_time(&h, &[TxId::new(1), TxId::new(2)]));
        assert!(!respects_real_time(&h, &[TxId::new(2), TxId::new(1)]));
        // Both are legal value-wise:
        assert!(is_legal_serialization(&h, &[TxId::new(2), TxId::new(1)]));
    }

    #[test]
    fn commit_pending_may_be_committed_in_a_completion() {
        // T1 wrote x=3 and invoked tryC without a response; T2 later reads
        // x=3. Strict serializability holds via the completion that
        // commits T1.
        let mut b = LogBuilder::new();
        b.write(0, 1, 0, 3);
        b.invoke(0, 1, TOpDesc::TryCommit);
        b.read(1, 2, 0, 3).commit(1, 2);
        let h = b.history();
        assert!(!h.is_complete());
        assert!(is_strictly_serializable(&h));
        assert!(is_opaque(&h));
    }

    #[test]
    fn live_transactions_are_aborted_in_completions() {
        let mut b = LogBuilder::new();
        b.write(0, 1, 0, 3); // live, never invokes tryC
        b.read(1, 2, 0, 0).commit(1, 2);
        let h = b.history();
        let comps = completions(&h);
        assert_eq!(comps.len(), 1);
        assert!(comps[0].is_complete());
        assert!(is_opaque(&h));
    }

    #[test]
    fn concurrent_reads_serialize_either_way() {
        // T1 writes x=1 and commits while T2 reads concurrently; T2's read
        // may see 0 (serialized before) or 1 (after).
        for seen in [0u64, 1] {
            let mut b = LogBuilder::new();
            let r = TOpDesc::Read(TObjId::new(0));
            b.invoke(1, 2, r);
            b.write(0, 1, 0, 1).commit(0, 1);
            b.respond(1, 2, r, TOpResult::Value(seen));
            b.commit(1, 2);
            let h = b.history();
            assert!(is_opaque(&h), "seen={seen}");
        }
    }

    #[test]
    fn figure1_execution_shape_is_strictly_serializable() {
        // The execution of Figure 1b: T_phi reads X1..X_{i-1} (initial
        // values), T_i writes X_i and commits, then T_phi reads X_i and
        // must return the new value.
        let i = 4;
        let mut b = LogBuilder::new();
        for x in 0..i - 1 {
            b.read(0, 1, x, 0);
        }
        b.write(1, 2, i - 1, 42).commit(1, 2);
        b.read(0, 1, i - 1, 42);
        b.commit(0, 1);
        let h = b.history();
        assert!(is_opaque(&h));
        // Serialization must put T_phi after T_2.
        let s = find_opaque_serialization(&h).unwrap();
        let pos = |id: u64| s.iter().position(|&t| t == TxId::new(id)).unwrap();
        assert!(pos(2) < pos(1));
    }

    #[test]
    fn figure1_old_value_after_commit_is_not_serializable() {
        // Claim 4's forbidden case: after T_i commits a new value, T_phi's
        // read of X_i returning the OLD value while T_phi also read other
        // items written by a committed T_l would be illegal. Minimal
        // variant: T_phi read X1=nv (from committed T_l), then T_i commits
        // X2=nv2, then T_phi reads X2 -> old value 0: no serialization.
        let mut b = LogBuilder::new();
        b.write(1, 10, 0, 7).commit(1, 10); // T_l: X1 := 7
        b.read(0, 1, 0, 7); // T_phi reads X1 = 7 (so T_phi after T_l)
        b.write(1, 2, 1, 9).commit(1, 2); // T_i: X2 := 9
        b.read(0, 1, 1, 0); // T_phi reads X2 = 0 (old!)
        b.commit(0, 1);
        let h = b.history();
        // T_phi must be serialized after T_l, and T_i after T_l (real
        // time); T_phi reading X2=0 forces T_phi before T_i, which is fine
        // — wait, that IS serializable: T_l, T_phi, T_i.
        assert!(is_strictly_serializable(&h));

        // The genuinely forbidden shape needs T_i ≺_RT T_phi's read point
        // *and* T_phi to read X2's old value after also reading X1's new
        // value written by the SAME transaction T_i.
        let mut b2 = LogBuilder::new();
        b2.write(1, 2, 0, 7).write(1, 2, 1, 9).commit(1, 2); // T_i: X1:=7, X2:=9
        b2.read(0, 1, 0, 7); // T_phi sees X1 = 7 => after T_i
        b2.read(0, 1, 1, 0); // but X2 = 0 => before T_i. Contradiction.
        b2.commit(0, 1);
        assert!(!is_strictly_serializable(&b2.history()));
    }
}
