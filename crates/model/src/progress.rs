//! TM-progress checkers: progressiveness and strong progressiveness.
//!
//! *Progressiveness* (Guerraoui–Kapalka): a transaction may abort only if
//! some concurrent transaction conflicts with it. *Strong progressiveness*
//! (Definition 1): additionally, for every set `Q ∈ CTrans(H)` with
//! `|CObj_H(Q)| ≤ 1` — a conflict-closed set of transactions whose
//! conflicts all involve at most one object — at least one member is not
//! aborted. Both are checked syntactically over a parsed [`History`].

use crate::conflict::{cobj_of_set, concurrent_conflict, conflict_components};
use crate::history::{History, TxStatus};
use ptm_sim::TxId;

/// A violation of progressiveness: this transaction aborted with no
/// concurrent conflicting transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressivenessViolation {
    /// The offending aborted transaction.
    pub tx: TxId,
}

/// Checks progressiveness: every aborted transaction has a concurrent
/// conflicting transaction. Returns all violations (empty = progressive).
pub fn progressiveness_violations(h: &History) -> Vec<ProgressivenessViolation> {
    let mut out = Vec::new();
    for t in h.transactions() {
        if t.status() != TxStatus::Aborted {
            continue;
        }
        let excused = h
            .transactions()
            .any(|o| o.id != t.id && concurrent_conflict(h, t.id, o.id));
        if !excused {
            out.push(ProgressivenessViolation { tx: t.id });
        }
    }
    out
}

/// Whether the history satisfies progressiveness.
pub fn is_progressive(h: &History) -> bool {
    progressiveness_violations(h).is_empty()
}

/// A violation of strong progressiveness: a conflict-closed set whose
/// conflicts involve at most one object, all of whose members aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrongProgressivenessViolation {
    /// The all-aborted conflict component.
    pub component: Vec<TxId>,
}

/// Checks strong progressiveness (Definition 1).
///
/// Every `Q ∈ CTrans(H)` is a union of connected components of the
/// conflict graph, and `CObj` distributes over the union, so it suffices
/// to check each component: if a component's `CObj` has at most one object
/// and every member aborted, Definition 1 is violated (the component
/// itself is a witness `Q`); conversely if every such component has a
/// non-aborted member, so does every qualifying union.
pub fn strong_progressiveness_violations(h: &History) -> Vec<StrongProgressivenessViolation> {
    let mut out = Vec::new();
    for comp in conflict_components(h) {
        if cobj_of_set(h, &comp).len() > 1 {
            continue;
        }
        let all_aborted = comp
            .iter()
            .all(|&t| h.tx(t).expect("component member").status() == TxStatus::Aborted);
        if all_aborted {
            out.push(StrongProgressivenessViolation {
                component: comp.into_iter().collect(),
            });
        }
    }
    out
}

/// Whether the history satisfies strong progressiveness (which includes
/// plain progressiveness, per Definition 1).
pub fn is_strongly_progressive(h: &History) -> bool {
    is_progressive(h) && strong_progressiveness_violations(h).is_empty()
}

/// Sequential TM-progress (minimal progressiveness) witness check for a
/// *t-sequential* history: every transaction that ran with no concurrency
/// must have committed.
pub fn sequential_progress_violations(h: &History) -> Vec<TxId> {
    h.transactions()
        .filter(|t| h.is_isolated(t.id) && t.status() == TxStatus::Aborted)
        .map(|t| t.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::testutil::LogBuilder;
    use ptm_sim::{TObjId, TOpDesc, TOpResult};

    #[test]
    fn spurious_abort_violates_progressiveness() {
        let mut b = LogBuilder::new();
        b.read(0, 1, 0, 0).abort(0, 1); // aborts alone
        let h = b.history();
        let v = progressiveness_violations(&h);
        assert_eq!(v, vec![ProgressivenessViolation { tx: TxId::new(1) }]);
        assert!(!is_progressive(&h));
        assert_eq!(sequential_progress_violations(&h), vec![TxId::new(1)]);
    }

    #[test]
    fn conflict_excuses_abort() {
        let mut b = LogBuilder::new();
        let r = TOpDesc::Read(TObjId::new(0));
        b.invoke(0, 1, r);
        b.write(1, 2, 0, 5);
        b.respond(0, 1, r, TOpResult::Value(0));
        b.commit(1, 2);
        b.abort(0, 1);
        let h = b.history();
        assert!(is_progressive(&h));
        assert!(is_strongly_progressive(&h));
    }

    #[test]
    fn all_aborted_single_object_component_violates_strong() {
        // T1 and T2 both write X0 concurrently and both abort.
        let mut b = LogBuilder::new();
        let w1 = TOpDesc::Write(TObjId::new(0), 1);
        let w2 = TOpDesc::Write(TObjId::new(0), 2);
        b.invoke(0, 1, w1);
        b.invoke(1, 2, w2);
        b.respond(0, 1, w1, TOpResult::Ok);
        b.respond(1, 2, w2, TOpResult::Ok);
        b.abort(0, 1);
        b.abort(1, 2);
        let h = b.history();
        assert!(is_progressive(&h)); // each abort is excused by the other
        let v = strong_progressiveness_violations(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].component, vec![TxId::new(1), TxId::new(2)]);
        assert!(!is_strongly_progressive(&h));
    }

    #[test]
    fn one_winner_satisfies_strong() {
        let mut b = LogBuilder::new();
        let w1 = TOpDesc::Write(TObjId::new(0), 1);
        let w2 = TOpDesc::Write(TObjId::new(0), 2);
        b.invoke(0, 1, w1);
        b.invoke(1, 2, w2);
        b.respond(0, 1, w1, TOpResult::Ok);
        b.respond(1, 2, w2, TOpResult::Ok);
        b.commit(0, 1);
        b.abort(1, 2);
        let h = b.history();
        assert!(is_strongly_progressive(&h));
    }

    #[test]
    fn multi_object_component_is_exempt() {
        // T1 writes X0,X1; T2 writes X0,X1: conflicts over two objects, so
        // Definition 1 places no constraint even if both abort.
        let mut b = LogBuilder::new();
        let w10 = TOpDesc::Write(TObjId::new(0), 1);
        let w20 = TOpDesc::Write(TObjId::new(0), 2);
        b.invoke(0, 1, w10);
        b.invoke(1, 2, w20);
        b.respond(0, 1, w10, TOpResult::Ok);
        b.respond(1, 2, w20, TOpResult::Ok);
        b.write(0, 1, 1, 1);
        b.write(1, 2, 1, 2);
        b.abort(0, 1);
        b.abort(1, 2);
        let h = b.history();
        assert!(strong_progressiveness_violations(&h).is_empty());
        assert!(is_strongly_progressive(&h));
    }

    #[test]
    fn empty_history_is_progressive() {
        let b = LogBuilder::new();
        let h = b.history();
        assert!(is_progressive(&h));
        assert!(is_strongly_progressive(&h));
    }
}
