//! Attribution of memory steps to transactions and t-operations, and the
//! read-visibility / weak-DAP execution checks built on it.
//!
//! The paper's definitions quantify over `E|k` (the events of transaction
//! `T_k`) and `E|π_k` (the events of one t-operation): *invisible reads*
//! forbid nontrivial events anywhere in a read-only transaction, *weak
//! invisible reads* forbid nontrivial events in the t-read operations of
//! transactions that run with no concurrent transaction. Theorem 3's
//! measured quantities — steps per t-read, distinct base objects per
//! t-read — are per-operation costs. All of these need the execution log
//! sliced by transaction and by operation, which is what this module does.

use crate::conflict::disjoint_access;
use crate::history::History;
use ptm_sim::{BaseObjectId, LogEntry, Marker, MemEvent, ProcessId, TOpDesc, TOpResult, TxId};
use std::collections::{BTreeMap, BTreeSet};

/// The memory events of one t-operation execution (`E|π_k`).
#[derive(Debug, Clone)]
pub struct OpFragment {
    /// Transaction issuing the operation.
    pub tx: TxId,
    /// Process executing it.
    pub pid: ProcessId,
    /// Zero-based index of the operation within its transaction.
    pub op_index: usize,
    /// The operation.
    pub desc: TOpDesc,
    /// Its result, if the response was logged.
    pub result: Option<TOpResult>,
    /// Memory events applied between invocation and response.
    pub mem_events: Vec<MemEvent>,
}

impl OpFragment {
    /// Number of steps (primitive applications) in the fragment.
    pub fn steps(&self) -> usize {
        self.mem_events.len()
    }

    /// Distinct base objects accessed in the fragment.
    pub fn distinct_objects(&self) -> BTreeSet<BaseObjectId> {
        self.mem_events.iter().map(|e| e.obj).collect()
    }

    /// Whether any event in the fragment is nontrivial.
    pub fn has_nontrivial(&self) -> bool {
        self.mem_events.iter().any(|e| e.prim.is_nontrivial())
    }

    /// Whether this fragment is a t-read.
    pub fn is_read(&self) -> bool {
        matches!(self.desc, TOpDesc::Read(_))
    }
}

/// All memory events attributed to one transaction (`E|k`), including any
/// applied between its operations.
#[derive(Debug, Clone, Default)]
pub struct TxFragment {
    /// Memory events of the transaction's process during the transaction.
    pub mem_events: Vec<MemEvent>,
    /// Base objects the transaction accessed.
    pub objects: BTreeSet<BaseObjectId>,
    /// Base objects the transaction applied nontrivial primitives to.
    pub nontrivial_objects: BTreeSet<BaseObjectId>,
}

/// Slices the log into per-operation fragments, in log order.
pub fn op_fragments(log: &[LogEntry]) -> Vec<OpFragment> {
    let mut open: BTreeMap<ProcessId, usize> = BTreeMap::new(); // pid -> index into out
    let mut op_counters: BTreeMap<TxId, usize> = BTreeMap::new();
    let mut out: Vec<OpFragment> = Vec::new();
    for entry in log {
        match &entry.payload {
            ptm_sim::LogPayload::Marker(Marker::TxInvoke { tx, op }) => {
                let op_index = {
                    let c = op_counters.entry(*tx).or_insert(0);
                    let i = *c;
                    *c += 1;
                    i
                };
                open.insert(entry.pid, out.len());
                out.push(OpFragment {
                    tx: *tx,
                    pid: entry.pid,
                    op_index,
                    desc: *op,
                    result: None,
                    mem_events: Vec::new(),
                });
            }
            ptm_sim::LogPayload::Marker(Marker::TxResponse { res, .. }) => {
                if let Some(&i) = open.get(&entry.pid) {
                    out[i].result = Some(*res);
                    open.remove(&entry.pid);
                }
            }
            ptm_sim::LogPayload::Mem(ev) => {
                if let Some(&i) = open.get(&entry.pid) {
                    out[i].mem_events.push(*ev);
                }
            }
            _ => {}
        }
    }
    out
}

/// Attributes every memory event to the transaction whose span (first
/// invocation to final `A`/`C` response) covers it on its process.
pub fn tx_fragments(log: &[LogEntry]) -> BTreeMap<TxId, TxFragment> {
    let mut current: BTreeMap<ProcessId, TxId> = BTreeMap::new();
    let mut out: BTreeMap<TxId, TxFragment> = BTreeMap::new();
    for entry in log {
        match &entry.payload {
            ptm_sim::LogPayload::Marker(Marker::TxInvoke { tx, .. }) => {
                current.insert(entry.pid, *tx);
                out.entry(*tx).or_default();
            }
            ptm_sim::LogPayload::Marker(Marker::TxResponse { tx, res, .. }) => {
                if matches!(res, TOpResult::Committed | TOpResult::Aborted) {
                    current.remove(&entry.pid);
                }
                out.entry(*tx).or_default();
            }
            ptm_sim::LogPayload::Mem(ev) => {
                if let Some(tx) = current.get(&entry.pid) {
                    let frag = out.entry(*tx).or_default();
                    frag.mem_events.push(*ev);
                    frag.objects.insert(ev.obj);
                    if ev.prim.is_nontrivial() {
                        frag.nontrivial_objects.insert(ev.obj);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Read-only transactions that applied a nontrivial primitive anywhere —
/// violations of (strong) *invisible reads*.
pub fn invisible_reads_violations(h: &History, log: &[LogEntry]) -> Vec<TxId> {
    let frags = tx_fragments(log);
    h.transactions()
        .filter(|t| t.is_read_only())
        .filter(|t| {
            frags
                .get(&t.id)
                .is_some_and(|f| !f.nontrivial_objects.is_empty())
        })
        .map(|t| t.id)
        .collect()
}

/// Violations of *weak invisible reads*: transactions with a non-empty
/// read set that are concurrent with **no** other transaction, yet some
/// t-read operation of theirs applied a nontrivial primitive. Returns
/// `(tx, op_index)` witnesses.
pub fn weak_invisible_reads_violations(h: &History, log: &[LogEntry]) -> Vec<(TxId, usize)> {
    let mut out = Vec::new();
    for frag in op_fragments(log) {
        if !frag.is_read() || !frag.has_nontrivial() {
            continue;
        }
        let Some(tx) = h.tx(frag.tx) else { continue };
        if tx.read_set().is_empty() || !h.is_isolated(tx.id) {
            continue;
        }
        out.push((frag.tx, frag.op_index));
    }
    out
}

/// A weak-DAP violation witness: two concurrent disjoint-access
/// transactions contended on a base object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DapViolation {
    /// First transaction.
    pub a: TxId,
    /// Second transaction.
    pub b: TxId,
    /// A base object they contended on.
    pub object: BaseObjectId,
}

/// Checks the weak-DAP condition over an execution: whenever two
/// transactions contend on a base object (both accessed it during the
/// execution, at least one nontrivially) while concurrent, they must
/// either share a t-object or be connected in the conflict-neighbourhood
/// graph `G(Ti,Tj,E)`.
///
/// This is the *observable* form of the definition (which is stated over
/// enabled events); any TM that satisfies weak DAP definitionally passes
/// this check, and a log-level witness here pinpoints a real memory race
/// between disjoint-access transactions.
pub fn weak_dap_violations(h: &History, log: &[LogEntry]) -> Vec<DapViolation> {
    let frags = tx_fragments(log);
    let ids: Vec<TxId> = h.transactions().map(|t| t.id).collect();
    let mut out = Vec::new();
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            if !h.concurrent(a, b) {
                continue;
            }
            let (Some(fa), Some(fb)) = (frags.get(&a), frags.get(&b)) else {
                continue;
            };
            // Contended objects: accessed by both, nontrivially by one.
            let shared: Vec<BaseObjectId> = fa
                .objects
                .intersection(&fb.objects)
                .copied()
                .filter(|o| fa.nontrivial_objects.contains(o) || fb.nontrivial_objects.contains(o))
                .collect();
            if shared.is_empty() {
                continue;
            }
            if disjoint_access(h, a, b) {
                out.push(DapViolation {
                    a,
                    b,
                    object: shared[0],
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_sim::{Home, Marker, Primitive, SimBuilder, TObjId};

    /// Runs a tiny scripted execution: p0 runs a read-only transaction
    /// (visible or invisible reads depending on `visible`), p1 idle.
    fn run_reader(visible: bool) -> (History, Vec<LogEntry>) {
        let mut b = SimBuilder::new(1);
        let val = b.alloc("val[X0]", 0, Home::Global);
        let meta = b.alloc("meta[X0]", 0, Home::Global);
        b.add_process(move |ctx| {
            let tx = TxId::new(1);
            let op = TOpDesc::Read(TObjId::new(0));
            ctx.marker(Marker::TxInvoke { tx, op });
            if visible {
                ctx.apply(meta, Primitive::FetchAdd(1)); // announce the read
            }
            let v = ctx.read(val);
            ctx.marker(Marker::TxResponse {
                tx,
                op,
                res: TOpResult::Value(v),
            });
            let opc = TOpDesc::TryCommit;
            ctx.marker(Marker::TxInvoke { tx, op: opc });
            ctx.marker(Marker::TxResponse {
                tx,
                op: opc,
                res: TOpResult::Committed,
            });
        });
        let sim = b.start();
        sim.run_to_block(0.into(), 100);
        let log = sim.log();
        let h = History::from_log(&log).unwrap();
        (h, log)
    }

    #[test]
    fn invisible_reader_passes_both_checks() {
        let (h, log) = run_reader(false);
        assert!(invisible_reads_violations(&h, &log).is_empty());
        assert!(weak_invisible_reads_violations(&h, &log).is_empty());
    }

    #[test]
    fn visible_reader_is_flagged() {
        let (h, log) = run_reader(true);
        assert_eq!(invisible_reads_violations(&h, &log), vec![TxId::new(1)]);
        assert_eq!(
            weak_invisible_reads_violations(&h, &log),
            vec![(TxId::new(1), 0)]
        );
    }

    #[test]
    fn op_fragments_attribute_steps() {
        let (_, log) = run_reader(true);
        let frags = op_fragments(&log);
        assert_eq!(frags.len(), 2); // read + tryC
        assert_eq!(frags[0].steps(), 2); // fetch_add + read
        assert_eq!(frags[0].distinct_objects().len(), 2);
        assert!(frags[0].has_nontrivial());
        assert_eq!(frags[0].result, Some(TOpResult::Value(0)));
        assert_eq!(frags[1].steps(), 0); // tryC does nothing
    }

    #[test]
    fn tx_fragments_cover_whole_transaction() {
        let (_, log) = run_reader(true);
        let frags = tx_fragments(&log);
        let f = &frags[&TxId::new(1)];
        assert_eq!(f.mem_events.len(), 2);
        assert_eq!(f.objects.len(), 2);
        assert_eq!(f.nontrivial_objects.len(), 1);
    }

    #[test]
    fn weak_dap_violation_detected_on_global_clock() {
        // Two concurrent transactions on disjoint t-objects share a global
        // sequence counter (as NOrec/TL2 would): that is a weak-DAP
        // violation by construction.
        let mut b = SimBuilder::new(2);
        let clock = b.alloc("clock", 0, Home::Global);
        let v0 = b.alloc("val[X0]", 0, Home::Global);
        let v1 = b.alloc("val[X1]", 0, Home::Global);
        for (pid, x, val) in [(0usize, 0usize, v0), (1, 1, v1)] {
            b.add_process(move |ctx| {
                let tx = TxId::new(pid as u64 + 1);
                let op = TOpDesc::Write(TObjId::new(x), 5);
                ctx.marker(Marker::TxInvoke { tx, op });
                ctx.write(val, 5);
                ctx.marker(Marker::TxResponse {
                    tx,
                    op,
                    res: TOpResult::Ok,
                });
                let opc = TOpDesc::TryCommit;
                ctx.marker(Marker::TxInvoke { tx, op: opc });
                ctx.apply(clock, Primitive::FetchAdd(1)); // global metadata
                ctx.marker(Marker::TxResponse {
                    tx,
                    op: opc,
                    res: TOpResult::Committed,
                });
            });
        }
        let sim = b.start();
        // Interleave so the transactions are concurrent.
        sim.step(0.into()).unwrap(); // T1 invoke
        sim.step(1.into()).unwrap(); // T2 invoke
        sim.run_to_block(0.into(), 100);
        sim.run_to_block(1.into(), 100);
        let log = sim.log();
        let h = History::from_log(&log).unwrap();
        let v = weak_dap_violations(&h, &log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].object, clock);
    }

    #[test]
    fn no_dap_violation_without_shared_metadata() {
        let mut b = SimBuilder::new(2);
        let v0 = b.alloc("val[X0]", 0, Home::Global);
        let v1 = b.alloc("val[X1]", 0, Home::Global);
        for (pid, x, val) in [(0usize, 0usize, v0), (1, 1, v1)] {
            b.add_process(move |ctx| {
                let tx = TxId::new(pid as u64 + 1);
                let op = TOpDesc::Write(TObjId::new(x), 5);
                ctx.marker(Marker::TxInvoke { tx, op });
                ctx.write(val, 5);
                ctx.marker(Marker::TxResponse {
                    tx,
                    op,
                    res: TOpResult::Ok,
                });
                let opc = TOpDesc::TryCommit;
                ctx.marker(Marker::TxInvoke { tx, op: opc });
                ctx.marker(Marker::TxResponse {
                    tx,
                    op: opc,
                    res: TOpResult::Committed,
                });
            });
        }
        let sim = b.start();
        sim.step(0.into()).unwrap();
        sim.step(1.into()).unwrap();
        sim.run_to_block(0.into(), 100);
        sim.run_to_block(1.into(), 100);
        let log = sim.log();
        let h = History::from_log(&log).unwrap();
        assert!(weak_dap_violations(&h, &log).is_empty());
    }
}
