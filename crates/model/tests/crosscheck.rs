//! Cross-checks the backtracking opacity/strict-serializability search
//! against a brute-force reference that enumerates *all* permutations —
//! on randomly generated small histories, the two must always agree.

use proptest::prelude::*;
use ptm_model::{
    completions, is_legal_serialization, is_opaque, is_strictly_serializable, respects_real_time,
    History,
};
use ptm_sim::{LogEntry, LogPayload, Marker, ProcessId, TObjId, TOpDesc, TOpResult, TxId};

/// Brute force: try every permutation of the candidate transactions.
fn brute_force(h: &History, committed_only: bool) -> bool {
    completions(h).iter().any(|c| {
        let ids: Vec<TxId> = if committed_only {
            c.committed()
        } else {
            c.transactions().map(|t| t.id).collect()
        };
        permutations(&ids)
            .into_iter()
            .any(|order| respects_real_time(c, &order) && is_legal_serialization(c, &order))
    })
}

fn permutations(ids: &[TxId]) -> Vec<Vec<TxId>> {
    if ids.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, &x) in ids.iter().enumerate() {
        let mut rest: Vec<TxId> = ids.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, x);
            out.push(tail);
        }
    }
    out
}

/// A compact description of a random history: per transaction, a process,
/// a list of (is_read, object, value) ops, and an outcome choice.
#[derive(Debug, Clone)]
struct TxDesc {
    pid: usize,
    ops: Vec<(bool, usize, u64)>,
    commit: bool,
}

fn arb_tx() -> impl Strategy<Value = TxDesc> {
    (
        0usize..3,
        proptest::collection::vec((any::<bool>(), 0usize..2, 0u64..3), 1..3),
        any::<bool>(),
    )
        .prop_map(|(pid, ops, commit)| TxDesc { pid, ops, commit })
}

/// Serializes the descriptions into a marker log. Transactions of one
/// process run sequentially; across processes the interleaving is driven
/// by `schedule` bits.
fn build_history(txs: &[TxDesc], interleave: u64) -> Option<History> {
    let mut log: Vec<LogEntry> = Vec::new();
    let push = |pid: usize, m: Marker, log: &mut Vec<LogEntry>| {
        let seq = log.len();
        log.push(LogEntry {
            seq,
            pid: ProcessId::new(pid),
            payload: LogPayload::Marker(m),
        });
    };
    // Round-robin-ish merge of per-process transaction streams, flipping
    // between "finish the op now" and "let another process go" using the
    // interleave bits. For simplicity each op is atomic (inv+resp
    // adjacent); concurrency comes from transactions spanning other
    // transactions' lifetimes.
    let mut streams: Vec<Vec<(usize, Marker)>> = Vec::new();
    for (k, tx) in txs.iter().enumerate() {
        let id = TxId::new(k as u64 + 1);
        let mut events = Vec::new();
        for &(is_read, obj, val) in &tx.ops {
            let x = TObjId::new(obj);
            if is_read {
                let op = TOpDesc::Read(x);
                events.push((tx.pid, Marker::TxInvoke { tx: id, op }));
                // Read values are filled in later by value oracle? No —
                // we just guess 0..3; most guesses are illegal, which is
                // fine: the checkers must agree either way.
                events.push((
                    tx.pid,
                    Marker::TxResponse {
                        tx: id,
                        op,
                        res: TOpResult::Value(val),
                    },
                ));
            } else {
                let op = TOpDesc::Write(x, val);
                events.push((tx.pid, Marker::TxInvoke { tx: id, op }));
                events.push((
                    tx.pid,
                    Marker::TxResponse {
                        tx: id,
                        op,
                        res: TOpResult::Ok,
                    },
                ));
            }
        }
        let opc = TOpDesc::TryCommit;
        events.push((tx.pid, Marker::TxInvoke { tx: id, op: opc }));
        events.push((
            tx.pid,
            Marker::TxResponse {
                tx: id,
                op: opc,
                res: if tx.commit {
                    TOpResult::Committed
                } else {
                    TOpResult::Aborted
                },
            },
        ));
        streams.push(events);
    }
    // Per-process queues of whole transactions (sequential per process).
    let mut queues: Vec<std::collections::VecDeque<Vec<(usize, Marker)>>> =
        vec![Default::default(); 3];
    for (k, ev) in streams.into_iter().enumerate() {
        queues[txs[k].pid].push_back(ev);
    }
    let mut active: Vec<Option<std::collections::VecDeque<(usize, Marker)>>> = vec![None; 3];
    let mut bits = interleave;
    loop {
        let mut progressed = false;
        for p in 0..3 {
            if active[p].is_none() {
                if let Some(next) = queues[p].pop_front() {
                    active[p] = Some(next.into_iter().collect());
                }
            }
            if let Some(events) = active[p].as_mut() {
                // Emit 2 events (one op) or hold back, per interleave bit.
                let go = bits & 1 == 1 || queues.iter().all(|q| q.is_empty());
                bits = bits.rotate_right(1) ^ 0x9E37;
                if go {
                    for _ in 0..2 {
                        if let Some((pid, m)) = events.pop_front() {
                            push(pid, m, &mut log);
                            progressed = true;
                        }
                    }
                    if events.is_empty() {
                        active[p] = None;
                    }
                }
            }
        }
        if !progressed && active.iter().all(Option::is_none) && queues.iter().all(|q| q.is_empty())
        {
            break;
        }
        if !progressed {
            // Force progress to avoid livelock in the generator.
            bits |= 1;
        }
    }
    History::from_log(&log).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Search checker == brute force on arbitrary small histories, for
    /// both opacity and strict serializability.
    #[test]
    fn search_agrees_with_brute_force(
        txs in proptest::collection::vec(arb_tx(), 1..4),
        interleave in any::<u64>(),
    ) {
        let Some(h) = build_history(&txs, interleave) else {
            return Ok(()); // generator produced an ill-formed merge; skip
        };
        prop_assert_eq!(is_opaque(&h), brute_force(&h, false), "opacity mismatch: {:?}", h);
        prop_assert_eq!(
            is_strictly_serializable(&h),
            brute_force(&h, true),
            "strict-serializability mismatch: {:?}",
            h
        );
    }

    /// Opacity always implies strict serializability.
    #[test]
    fn opacity_implies_strict(
        txs in proptest::collection::vec(arb_tx(), 1..4),
        interleave in any::<u64>(),
    ) {
        let Some(h) = build_history(&txs, interleave) else { return Ok(()) };
        if is_opaque(&h) {
            prop_assert!(is_strictly_serializable(&h));
        }
    }
}

#[test]
fn brute_force_matches_on_known_cases() {
    // Deterministic pin of the reference implementation itself.
    let mk = |ops: &[(usize, u64, u64)]| {
        // (pid, tx, value-written) sequential committed writers
        let mut log = Vec::new();
        for &(pid, tx, v) in ops {
            let w = TOpDesc::Write(TObjId::new(0), v);
            for m in [
                Marker::TxInvoke {
                    tx: TxId::new(tx),
                    op: w,
                },
                Marker::TxResponse {
                    tx: TxId::new(tx),
                    op: w,
                    res: TOpResult::Ok,
                },
                Marker::TxInvoke {
                    tx: TxId::new(tx),
                    op: TOpDesc::TryCommit,
                },
                Marker::TxResponse {
                    tx: TxId::new(tx),
                    op: TOpDesc::TryCommit,
                    res: TOpResult::Committed,
                },
            ] {
                let seq = log.len();
                log.push(LogEntry {
                    seq,
                    pid: ProcessId::new(pid),
                    payload: LogPayload::Marker(m),
                });
            }
        }
        History::from_log(&log).expect("well-formed")
    };
    let h = mk(&[(0, 1, 5), (1, 2, 6)]);
    assert!(is_opaque(&h));
    assert!(brute_force(&h, false));
    assert!(brute_force(&h, true));
}
