//! E9 — progress guarantees under conflict storms.
//!
//! Definition 1 (strong progressiveness) says: in any conflict-closed set
//! of transactions whose conflicts involve at most one item, somebody
//! commits. The storm workload throws `n` single-item transactions at the
//! same t-object under adversarial schedules and lets the checker audit
//! every resulting history.

use progressive_tm::core::{ScriptOp, TmHarness, TmKind, TxScript, ALL_TMS};
use progressive_tm::model;
use progressive_tm::sim::{BurstPolicy, ProcessId, RandomPolicy, TObjId};

/// All processes update the single item X0 concurrently, one attempt each.
fn single_item_storm(tm: TmKind, n: usize, seed: u64) -> model::History {
    let mut h = TmHarness::new(n, |b| tm.install(b, 1));
    for p in 0..n {
        h.run_script(
            ProcessId::new(p),
            TxScript {
                ops: vec![
                    ScriptOp::Read(TObjId::new(0)),
                    ScriptOp::Write(TObjId::new(0), p as u64 + 1),
                ],
                retry_until_commit: false,
            },
        );
    }
    h.run_all(&mut RandomPolicy::seeded(seed), 500_000);
    h.stop_all();
    h.history()
}

#[test]
fn storms_satisfy_strong_progressiveness() {
    for &tm in ALL_TMS {
        for seed in 0..10 {
            let hist = single_item_storm(tm, 4, seed);
            assert!(
                model::is_strongly_progressive(&hist),
                "{} seed={seed}: strong progressiveness violated",
                tm.name()
            );
            // At least one of the contenders must have committed.
            assert!(
                !hist.committed().is_empty(),
                "{} seed={seed}: everyone aborted",
                tm.name()
            );
        }
    }
}

#[test]
fn storms_are_strictly_serializable() {
    for &tm in ALL_TMS {
        let hist = single_item_storm(tm, 5, 123);
        assert!(model::is_strictly_serializable(&hist), "{}", tm.name());
    }
}

#[test]
fn sequential_runs_always_commit() {
    // Sequential TM-progress (minimal progressiveness): a transaction
    // running alone from a quiescent configuration commits.
    for &tm in ALL_TMS {
        let mut h = TmHarness::new(1, |b| tm.install(b, 2));
        for round in 0..5 {
            h.run_writer(ProcessId::new(0), &[(TObjId::new(round % 2), round as u64)]);
        }
        h.stop_all();
        let hist = h.history();
        assert_eq!(hist.committed().len(), 5, "{}", tm.name());
        assert!(model::sequential_progress_violations(&hist).is_empty());
    }
}

#[test]
fn burst_storms_preserve_progress() {
    for &tm in ALL_TMS {
        let mut h = TmHarness::new(4, |b| tm.install(b, 1));
        for p in 0..4 {
            h.run_script(
                ProcessId::new(p),
                TxScript {
                    ops: vec![ScriptOp::Write(TObjId::new(0), p as u64 + 1)],
                    retry_until_commit: true, // blind writes, retried
                },
            );
        }
        let mut policy = BurstPolicy::seeded(5, 10);
        let steps = progressive_tm::sim::run_policy(h.sim(), &mut policy, 500_000);
        assert!(steps < 500_000, "{}: livelock", tm.name());
        h.stop_all();
        let hist = h.history();
        // Retried until committed: each process has exactly one commit.
        assert_eq!(hist.committed().len(), 4, "{}", tm.name());
        assert!(model::is_strongly_progressive(&hist), "{}", tm.name());
    }
}

#[test]
fn aborts_are_always_excused_by_conflicts() {
    // Progressiveness in mixed workloads: any abort has a concurrent
    // conflicting transaction.
    for &tm in ALL_TMS {
        for seed in [7u64, 21, 63] {
            let mut h = TmHarness::new(3, |b| tm.install(b, 2));
            for p in 0..3 {
                h.run_script(
                    ProcessId::new(p),
                    TxScript {
                        ops: vec![
                            ScriptOp::Read(TObjId::new(p % 2)),
                            ScriptOp::Write(TObjId::new((p + 1) % 2), 9),
                        ],
                        retry_until_commit: false,
                    },
                );
            }
            h.run_all(&mut RandomPolicy::seeded(seed), 500_000);
            h.stop_all();
            let hist = h.history();
            let violations = model::progressiveness_violations(&hist);
            assert!(
                violations.is_empty(),
                "{} seed={seed}: {violations:?}",
                tm.name()
            );
        }
    }
}
