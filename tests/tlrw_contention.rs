//! Contention management under Tlrw's reader–writer conflicts.
//!
//! Visible reads create a conflict shape the invisible-read algorithms
//! never see: a *writer* aborted by mere readers. These tests pin down
//! how the pluggable contention managers behave in that regime — a
//! writer facing readers must eventually commit under the default
//! [`ExponentialBackoff`], and under [`ImmediateRetry`] it must be
//! *bounded* (exhaustion reported, no livelock) — and that the engine
//! releases every read lock before the policy's wait runs, so backing
//! off never blocks other transactions.

use progressive_tm::stm::{Algorithm, CappedAttempts, ImmediateRetry, RetriesExhausted, Stm, TVar};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Holds a Tlrw read lock on `v`'s stripe from a second thread until
/// `release` is flipped, running `body` in between.
fn with_held_read_lock<T>(
    stm: &Arc<Stm>,
    v: &TVar<u64>,
    body: impl FnOnce(&Arc<AtomicBool>) -> T,
) -> T {
    let held = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let stm2 = Arc::clone(stm);
        let v2 = v.clone();
        let (held2, release2) = (Arc::clone(&held), Arc::clone(&release));
        s.spawn(move || {
            stm2.atomically(|tx| {
                let x = tx.read(&v2)?;
                held2.store(true, Ordering::SeqCst);
                while !release2.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                Ok(x)
            });
        });
        while !held.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        body(&release)
    })
}

#[test]
fn writer_facing_a_persistent_reader_is_bounded_under_immediate_retry() {
    // The deterministic no-livelock assertion: a reader camps on the
    // stripe for the whole test, so an ImmediateRetry writer would spin
    // forever — the capped wrapper must stop it at *exactly* its bound,
    // with every attempt accounted as a reader conflict.
    let stm = Arc::new(
        Stm::builder(Algorithm::Tlrw)
            .contention_manager(CappedAttempts::wrapping(64, ImmediateRetry))
            .build(),
    );
    let v = TVar::new(0u64);
    with_held_read_lock(&stm, &v, |release| {
        let out = stm.run(|tx| tx.write(&v, 1));
        assert_eq!(out, Err(RetriesExhausted { attempts: 64 }));
        let s = stm.stats().snapshot();
        assert_eq!(s.aborts, 64, "every attempt aborted");
        assert_eq!(s.reader_conflicts, 64, "every abort was a reader conflict");
        release.store(true, Ordering::SeqCst);
    });
    assert_eq!(v.load(), 0, "the exhausted writer must leave no trace");
    // With the stripe free again the same write commits first try.
    let before = stm.stats().snapshot();
    stm.atomically(|tx| tx.write(&v, 1));
    assert_eq!(stm.stats().snapshot().since(&before).aborts, 0);
    assert_eq!(v.load(), 1);
}

#[test]
fn writer_facing_a_persistent_reader_commits_under_backoff_once_readers_drain() {
    // ExponentialBackoff keeps retrying (it never gives up), so the
    // writer must survive an arbitrarily long reader occupation and
    // commit as soon as the stripe drains.
    let stm = Arc::new(Stm::new(Algorithm::Tlrw)); // default CM: backoff
    let v = TVar::new(0u64);
    let writer_done = Arc::new(AtomicBool::new(false));
    with_held_read_lock(&stm, &v, |release| {
        std::thread::scope(|s| {
            let stm2 = Arc::clone(&stm);
            let v2 = v.clone();
            let done = Arc::clone(&writer_done);
            s.spawn(move || {
                stm2.atomically(|tx| tx.write(&v2, 7));
                done.store(true, Ordering::SeqCst);
            });
            // Let the writer bang its head against the held read lock
            // until real conflicts are on the books...
            while stm.stats().snapshot().reader_conflicts < 3 {
                std::thread::yield_now();
            }
            assert!(!writer_done.load(Ordering::SeqCst), "reader still holds");
            // ...then drain the reader; backoff must now let it through.
            release.store(true, Ordering::SeqCst);
        });
    });
    assert!(writer_done.load(Ordering::SeqCst));
    assert_eq!(v.load(), 7);
    assert!(stm.stats().snapshot().reader_conflicts >= 3);
}

#[test]
fn writer_eventually_commits_through_a_stream_of_transient_readers() {
    // Readers come and go (short read-only transactions in a loop);
    // under the default backoff the writer must find a gap and commit —
    // eventual success against live reader traffic, not just against a
    // drained stripe.
    let stm = Arc::new(Stm::new(Algorithm::Tlrw));
    let v = TVar::new(0u64);
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for _ in 0..2 {
            let stm2 = Arc::clone(&stm);
            let v2 = v.clone();
            let (stop2, reads2) = (Arc::clone(&stop), Arc::clone(&reads));
            s.spawn(move || {
                while !stop2.load(Ordering::SeqCst) {
                    let _ = stm2.atomically(|tx| tx.read(&v2));
                    reads2.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Only start writing once reader traffic is demonstrably live.
        while reads.load(Ordering::Relaxed) < 5 {
            std::thread::yield_now();
        }
        stm.atomically(|tx| tx.write(&v, 42));
        stop.store(true, Ordering::SeqCst);
    });
    assert_eq!(v.load(), 42);
    assert!(reads.load(Ordering::Relaxed) >= 5, "readers actually ran");
}

#[test]
fn symmetric_upgraders_diverge_under_backoff() {
    // The not-strongly-progressive shape: two read-to-write upgraders on
    // one variable abort each other when truly concurrent. The
    // contention manager's job is to make them diverge; with the
    // default backoff both increments must eventually land.
    let stm = Arc::new(Stm::new(Algorithm::Tlrw));
    let v = TVar::new(0u64);
    let rounds = 500u64;
    std::thread::scope(|s| {
        for _ in 0..2 {
            let stm2 = Arc::clone(&stm);
            let v2 = v.clone();
            s.spawn(move || {
                for _ in 0..rounds {
                    stm2.atomically(|tx| {
                        let x = tx.read(&v2)?;
                        tx.write(&v2, x + 1)
                    });
                }
            });
        }
    });
    assert_eq!(v.load(), 2 * rounds);
}
