//! Each TM's claimed properties ([`TmProperties`]) audited by the
//! log-level checkers: read visibility (strong and weak invisible reads)
//! and weak disjoint-access parallelism.

use progressive_tm::core::{ScriptOp, TmHarness, TmKind, TxScript, ALL_TMS};
use progressive_tm::model;
use progressive_tm::sim::{ProcessId, TObjId, TOpResult};

/// Runs one solo read-only transaction over `m` items; returns (history,
/// log).
fn solo_reader(tm: TmKind, m: usize) -> (model::History, Vec<progressive_tm::sim::LogEntry>) {
    let mut h = TmHarness::new(1, |b| tm.install(b, m));
    let p = ProcessId::new(0);
    h.begin(p);
    for i in 0..m {
        let (res, _) = h.read(p, TObjId::new(i));
        assert_eq!(res, TOpResult::Value(0));
    }
    let (res, _) = h.try_commit(p);
    assert_eq!(res, TOpResult::Committed);
    h.stop_all();
    (h.history(), h.log())
}

#[test]
fn invisible_reads_claims_match_reality() {
    let mut b = ptm_sim::SimBuilder::new(1);
    for &tm in ALL_TMS {
        let claimed = tm.install(&mut b, 1).properties().invisible_reads;
        let (hist, log) = solo_reader(tm, 3);
        let violations = model::invisible_reads_violations(&hist, &log);
        if claimed {
            assert!(
                violations.is_empty(),
                "{}: claimed invisible, found {violations:?}",
                tm.name()
            );
        } else if tm == TmKind::Visible || tm == TmKind::Glock {
            assert!(
                !violations.is_empty(),
                "{}: expected visible reads",
                tm.name()
            );
        }
    }
}

#[test]
fn weak_invisible_reads_hold_for_all_invisible_tms() {
    // Weak invisible reads: t-reads of an isolated transaction apply no
    // nontrivial events. Stronger TMs (invisible) imply it; the visible
    // TM violates it by construction.
    for &tm in [TmKind::Progressive, TmKind::Tl2, TmKind::Norec].iter() {
        let (hist, log) = solo_reader(tm, 4);
        assert!(
            model::weak_invisible_reads_violations(&hist, &log).is_empty(),
            "{}",
            tm.name()
        );
    }
    let (hist, log) = solo_reader(TmKind::Visible, 4);
    assert!(!model::weak_invisible_reads_violations(&hist, &log).is_empty());
}

/// Two concurrent updating transactions on disjoint items, fully
/// interleaved; returns (history, log).
fn disjoint_pair(tm: TmKind) -> (model::History, Vec<progressive_tm::sim::LogEntry>) {
    let mut h = TmHarness::new(2, |b| tm.install(b, 2));
    for p in 0..2 {
        h.run_script(
            ProcessId::new(p),
            TxScript {
                ops: vec![
                    ScriptOp::Read(TObjId::new(p)),
                    ScriptOp::Write(TObjId::new(p), 5),
                ],
                retry_until_commit: true,
            },
        );
    }
    // Strict alternation keeps them concurrent the whole way.
    let mut rr = progressive_tm::sim::RoundRobin::new();
    progressive_tm::sim::run_policy(h.sim(), &mut rr, 100_000);
    h.stop_all();
    (h.history(), h.log())
}

#[test]
fn weak_dap_claims_match_reality() {
    let mut b = ptm_sim::SimBuilder::new(1);
    for &tm in ALL_TMS {
        let claimed = tm.install(&mut b, 1).properties().weak_dap;
        let (hist, log) = disjoint_pair(tm);
        let violations = model::weak_dap_violations(&hist, &log);
        if claimed {
            assert!(
                violations.is_empty(),
                "{}: claimed weak DAP, found {violations:?}",
                tm.name()
            );
        } else {
            assert!(
                !violations.is_empty(),
                "{}: expected a base-object race between disjoint transactions",
                tm.name()
            );
        }
    }
}

#[test]
fn visible_reader_is_aborted_not_corrupted() {
    // The visible-reads TM aborts readers instead of validating; the
    // resulting histories must still be opaque.
    let mut h = TmHarness::new(2, |b| TmKind::Visible.install(b, 2));
    let (p0, p1) = (ProcessId::new(0), ProcessId::new(1));
    h.begin(p0);
    let (r, _) = h.read(p0, TObjId::new(0));
    assert_eq!(r, TOpResult::Value(0));
    h.run_writer(p1, &[(TObjId::new(0), 9)]);
    // The reader was aborted by the committing writer.
    let (r2, _) = h.read(p0, TObjId::new(1));
    assert_eq!(r2, TOpResult::Aborted);
    h.stop_all();
    let hist = h.history();
    assert!(model::is_opaque(&hist));
    assert!(model::is_progressive(&hist));
}
