//! Cross-crate integration tests of the native STM under real
//! concurrency: linearizable counters, multi-variable invariants,
//! conflict statistics, and the quadratic-validation signature of the
//! paper's design point on real threads.

use progressive_tm::stm::{Algorithm, Retry, Stm, TVar};
use std::sync::Arc;

const ALGOS: [Algorithm; 3] = [Algorithm::Tl2, Algorithm::Incremental, Algorithm::Norec];

#[test]
fn torture_counter_all_algorithms() {
    for algo in ALGOS {
        let stm = Arc::new(Stm::new(algo));
        let v = TVar::new(0u64);
        let threads = 8;
        let per = 1_000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let stm = Arc::clone(&stm);
                let v = v.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        stm.atomically(|tx| tx.modify(&v, |x| x + 1));
                    }
                });
            }
        });
        assert_eq!(v.load(), threads * per, "{algo:?}");
        let stats = stm.stats().snapshot();
        assert_eq!(stats.commits, threads * per, "{algo:?}");
    }
}

#[test]
fn multi_variable_invariant_under_contention() {
    // x + y + z is preserved by three-way rotations.
    for algo in ALGOS {
        let stm = Arc::new(Stm::new(algo));
        let vars = [TVar::new(300u64), TVar::new(200u64), TVar::new(100u64)];
        std::thread::scope(|s| {
            for t in 0..6 {
                let stm = Arc::clone(&stm);
                let vars = vars.clone();
                s.spawn(move || {
                    for i in 0..500 {
                        let from = (t + i) % 3;
                        let to = (t + i + 1) % 3;
                        stm.atomically(|tx| {
                            let a = tx.read(&vars[from])?;
                            let b = tx.read(&vars[to])?;
                            let amt = a.min(3);
                            tx.write(&vars[from], a - amt)?;
                            tx.write(&vars[to], b + amt)
                        });
                    }
                });
            }
        });
        let total: u64 = vars.iter().map(TVar::load).sum();
        assert_eq!(total, 600, "{algo:?}");
    }
}

#[test]
fn incremental_probe_count_is_exactly_quadratic() {
    // The native echo of Theorem 3(1): m reads cost m(m-1)/2 validation
    // probes in incremental mode, zero in TL2 for read-only transactions.
    for m in [8u64, 32, 64] {
        let stm = Stm::incremental();
        let vars: Vec<TVar<u64>> = (0..m).map(TVar::new).collect();
        let before = stm.stats().snapshot();
        stm.atomically(|tx| {
            let mut sum = 0;
            for v in &vars {
                sum += tx.read(v)?;
            }
            Ok(sum)
        });
        let d = stm.stats().snapshot().since(&before);
        assert_eq!(d.validation_probes, m * (m - 1) / 2, "m={m}");
    }
}

#[test]
fn try_once_reports_conflicts_without_retrying() {
    let stm = Stm::tl2();
    let v = TVar::new(1u64);
    // A transaction that always requests retry commits nothing.
    assert!(stm.try_once(|tx| {
        tx.write(&v, 2)?;
        Err::<(), Retry>(Retry)
    })
    .is_none());
    assert_eq!(v.load(), 1);
    // A clean one commits.
    assert_eq!(stm.try_once(|tx| tx.read(&v)), Some(1));
}

#[test]
fn heterogeneous_value_types() {
    let stm = Stm::tl2();
    let name = TVar::new(String::from("alice"));
    let balance = TVar::new(10u64);
    let tags = TVar::new(vec![1u8, 2, 3]);
    let summary = stm.atomically(|tx| {
        let n = tx.read(&name)?;
        let b = tx.read(&balance)?;
        let mut t = tx.read(&tags)?;
        t.push(4);
        tx.write(&tags, t.clone())?;
        Ok(format!("{n}:{b}:{}", t.len()))
    });
    assert_eq!(summary, "alice:10:4");
    assert_eq!(tags.load(), vec![1, 2, 3, 4]);
}

#[test]
fn aborted_transactions_do_not_leak_writes_under_contention() {
    // Hammer a pair of vars with transactions that abort halfway through
    // (conditionally), verifying atomicity: never (new, old) mixes.
    for algo in ALGOS {
        let stm = Arc::new(Stm::new(algo));
        let a = TVar::new(0u64);
        let b = TVar::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stm = Arc::clone(&stm);
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    for _ in 0..400 {
                        stm.atomically(|tx| {
                            let x = tx.read(&a)?;
                            tx.write(&a, x + 1)?;
                            tx.write(&b, x + 1)?;
                            Ok(())
                        });
                    }
                });
            }
            let stm2 = Arc::clone(&stm);
            let (a2, b2) = (a.clone(), b.clone());
            s.spawn(move || {
                for _ in 0..2_000 {
                    let (x, y) = stm2.atomically(|tx| Ok((tx.read(&a2)?, tx.read(&b2)?)));
                    assert_eq!(x, y, "{algo:?}: torn pair");
                }
            });
        });
        assert_eq!(a.load(), b.load());
        assert_eq!(a.load(), 1_600);
    }
}
