//! Algorithm-generic conformance suite for the native STM.
//!
//! Every invariant in `mod conformance` runs against **all six**
//! algorithms through the `conformance_suite!` macro — one module (and
//! one set of `#[test]`s) per algorithm, so a new variant inherits the
//! whole suite by adding a single macro line (exactly how `Adaptive`,
//! the fifth, and `Mv`, the sixth, arrived). Properties that are
//! *specific* to one algorithm's cost model (NOrec's zero-abort equal
//! write-back, Incremental's quadratic probes, Tlrw's zero-validation
//! visible reads, Mv's abort-free snapshot scans and version-chain GC,
//! Adaptive's mid-workload mode switch) live below the macro, asserted
//! against exactly the algorithm that guarantees them.

use progressive_tm::model::{is_opaque, History};
use progressive_tm::stm::{
    ActiveMode, AdaptiveConfig, Algorithm, CappedAttempts, HistoryRecorder, MvConfig,
    RetriesExhausted, Retry, Stm, TVar,
};
use std::sync::Arc;

const ALGOS: [Algorithm; 6] = [
    Algorithm::Tl2,
    Algorithm::Incremental,
    Algorithm::Norec,
    Algorithm::Tlrw,
    Algorithm::Mv,
    Algorithm::Adaptive,
];

/// Deterministic per-thread transfer stream shared by the bank runs, so
/// the final balances are a pure function of the transfer set.
fn bank_run(algo: Algorithm) -> Vec<u64> {
    const ACCOUNTS: usize = 16;
    const THREADS: usize = 6;
    const PER_THREAD: usize = 400;
    const INITIAL: u64 = 1_000_000;

    let stm = Arc::new(Stm::new(algo));
    let accounts: Vec<TVar<u64>> = (0..ACCOUNTS).map(|_| TVar::new(INITIAL)).collect();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let stm = Arc::clone(&stm);
            let accounts = accounts.clone();
            s.spawn(move || {
                let mut seed = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                for _ in 0..PER_THREAD {
                    seed = seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let from = (seed >> 33) as usize % ACCOUNTS;
                    let to = (seed >> 13) as usize % ACCOUNTS;
                    let amt = 1 + (seed >> 50) % 7;
                    if from == to {
                        continue;
                    }
                    stm.atomically(|tx| {
                        let a = tx.read(&accounts[from])?;
                        let b = tx.read(&accounts[to])?;
                        tx.write(&accounts[from], a - amt)?;
                        tx.write(&accounts[to], b + amt)
                    });
                }
            });
        }
    });
    let balances: Vec<u64> = accounts.iter().map(TVar::load).collect();
    assert_eq!(
        balances.iter().sum::<u64>(),
        ACCOUNTS as u64 * INITIAL,
        "{algo:?}: conservation violated"
    );
    balances
}

/// The conformance invariants, each parameterized by algorithm.
mod conformance {
    use super::*;

    /// Linearizable counter: N threads of read-modify-write increments
    /// land exactly, and every successful `atomically` is one commit.
    pub fn torture_counter(algo: Algorithm) {
        let stm = Arc::new(Stm::new(algo));
        let v = TVar::new(0u64);
        let threads = 4;
        let per = 800;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let stm = Arc::clone(&stm);
                let v = v.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        stm.atomically(|tx| tx.modify(&v, |x| x + 1));
                    }
                });
            }
        });
        assert_eq!(v.load(), threads * per, "{algo:?}");
        assert_eq!(stm.stats().snapshot().commits, threads * per, "{algo:?}");
    }

    /// x + y + z is preserved by concurrent three-way rotations.
    pub fn multi_variable_invariant(algo: Algorithm) {
        let stm = Arc::new(Stm::new(algo));
        let vars = [TVar::new(300u64), TVar::new(200u64), TVar::new(100u64)];
        std::thread::scope(|s| {
            for t in 0..6 {
                let stm = Arc::clone(&stm);
                let vars = vars.clone();
                s.spawn(move || {
                    for i in 0..400 {
                        let from = (t + i) % 3;
                        let to = (t + i + 1) % 3;
                        stm.atomically(|tx| {
                            let a = tx.read(&vars[from])?;
                            let b = tx.read(&vars[to])?;
                            let amt = a.min(3);
                            tx.write(&vars[from], a - amt)?;
                            tx.write(&vars[to], b + amt)
                        });
                    }
                });
            }
        });
        let total: u64 = vars.iter().map(TVar::load).sum();
        assert_eq!(total, 600, "{algo:?}");
    }

    /// Deterministic bank stress: conservation under contention.
    pub fn bank_stress(algo: Algorithm) {
        let _ = bank_run(algo);
    }

    /// Value-level ABA: one thread blindly re-commits the value a
    /// variable already holds while readers transact over it. Whatever
    /// the algorithm does about the interference (NOrec absorbs it,
    /// the versioned algorithms retry, Tlrw arbitrates through the
    /// stripe lock), readers must only ever observe the unchanged value
    /// and their own counter must land exactly.
    pub fn aba_equal_write_back(algo: Algorithm) {
        let stm = Arc::new(Stm::new(algo));
        let v = TVar::new(7u64);
        let w = TVar::new(0u64);
        let rounds = 300u64;
        std::thread::scope(|s| {
            let stm1 = Arc::clone(&stm);
            let v1 = v.clone();
            s.spawn(move || {
                for _ in 0..rounds {
                    // Equal write-back: v already holds 7.
                    stm1.atomically(|tx| tx.write(&v1, 7));
                }
            });
            let stm2 = Arc::clone(&stm);
            let (v2, w2) = (v.clone(), w.clone());
            s.spawn(move || {
                for _ in 0..rounds {
                    let seen = stm2.atomically(|tx| {
                        let x = tx.read(&v2)?;
                        tx.modify(&w2, |c| c + 1)?;
                        Ok(x)
                    });
                    assert_eq!(seen, 7, "{algo:?}: equal write-back changed the value");
                }
            });
        });
        assert_eq!(v.load(), 7, "{algo:?}");
        assert_eq!(w.load(), rounds, "{algo:?}");
    }

    /// Retry-budget exhaustion is reported as a value, with the exact
    /// attempt count, and the failed attempts left no trace.
    pub fn exhaustion_reported(algo: Algorithm) {
        let stm = Stm::builder(algo).max_attempts(3).build();
        let v = TVar::new(5u64);
        let out = stm.run(|tx| {
            tx.read(&v)?;
            tx.write(&v, 99)?;
            Err::<(), Retry>(Retry)
        });
        assert_eq!(out, Err(RetriesExhausted { attempts: 3 }), "{algo:?}");
        assert_eq!(stm.stats().snapshot().aborts, 3, "{algo:?}");
        assert_eq!(v.load(), 5, "{algo:?}: aborted writes leaked");
    }

    /// Atomicity under contention: writers keep two variables equal;
    /// a racing reader must never observe a torn pair.
    pub fn no_torn_writes(algo: Algorithm) {
        let stm = Arc::new(Stm::new(algo));
        let a = TVar::new(0u64);
        let b = TVar::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stm = Arc::clone(&stm);
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    for _ in 0..400 {
                        stm.atomically(|tx| {
                            let x = tx.read(&a)?;
                            tx.write(&a, x + 1)?;
                            tx.write(&b, x + 1)?;
                            Ok(())
                        });
                    }
                });
            }
            let stm2 = Arc::clone(&stm);
            let (a2, b2) = (a.clone(), b.clone());
            s.spawn(move || {
                for _ in 0..2_000 {
                    let (x, y) = stm2.atomically(|tx| Ok((tx.read(&a2)?, tx.read(&b2)?)));
                    assert_eq!(x, y, "{algo:?}: torn pair");
                }
            });
        });
        assert_eq!(a.load(), b.load());
        assert_eq!(a.load(), 1_600);
    }

    /// Write skew must not be admitted: two transactions each read both
    /// variables and conditionally write one; x + y <= 1 always.
    pub fn no_write_skew(algo: Algorithm) {
        let stm = Arc::new(Stm::new(algo));
        for _ in 0..150 {
            let x = TVar::new(0u64);
            let y = TVar::new(0u64);
            std::thread::scope(|s| {
                for (mine, theirs) in [(x.clone(), y.clone()), (y.clone(), x.clone())] {
                    let stm = Arc::clone(&stm);
                    s.spawn(move || {
                        stm.atomically(|tx| {
                            let (a, b) = (tx.read(&mine)?, tx.read(&theirs)?);
                            if a + b == 0 {
                                tx.write(&mine, 1)?;
                            }
                            Ok(())
                        });
                    });
                }
            });
            assert!(x.load() + y.load() <= 1, "{algo:?}");
        }
    }
}

/// Instantiates the whole conformance suite for one algorithm per macro
/// line. A new algorithm inherits every invariant by adding its line.
macro_rules! conformance_suite {
    ($($module:ident => $algo:expr),* $(,)?) => {$(
        mod $module {
            use super::*;

            #[test]
            fn torture_counter() {
                conformance::torture_counter($algo);
            }

            #[test]
            fn multi_variable_invariant() {
                conformance::multi_variable_invariant($algo);
            }

            #[test]
            fn bank_stress() {
                conformance::bank_stress($algo);
            }

            #[test]
            fn aba_equal_write_back() {
                conformance::aba_equal_write_back($algo);
            }

            #[test]
            fn exhaustion_reported() {
                conformance::exhaustion_reported($algo);
            }

            #[test]
            fn no_torn_writes() {
                conformance::no_torn_writes($algo);
            }

            #[test]
            fn no_write_skew() {
                conformance::no_write_skew($algo);
            }
        }
    )*};
}

conformance_suite! {
    tl2 => Algorithm::Tl2,
    incremental => Algorithm::Incremental,
    norec => Algorithm::Norec,
    tlrw => Algorithm::Tlrw,
    mv => Algorithm::Mv,
    adaptive => Algorithm::Adaptive,
}

#[test]
fn bank_final_balances_identical_across_all_algorithms() {
    // Fixed transfer amounts and ample initial balances make the final
    // per-account balance a pure function of the (deterministic) set of
    // transfers, independent of scheduling — so all six algorithms must
    // converge to the *same* balances, not just the same total.
    let baseline = bank_run(Algorithm::Tl2);
    for algo in [
        Algorithm::Incremental,
        Algorithm::Norec,
        Algorithm::Tlrw,
        Algorithm::Mv,
        Algorithm::Adaptive,
    ] {
        assert_eq!(baseline, bank_run(algo), "Tl2 vs {algo:?} balances diverge");
    }
}

#[test]
fn incremental_probe_count_is_exactly_quadratic() {
    // The native echo of Theorem 3(1): m reads cost m(m-1)/2 validation
    // probes in incremental mode.
    for m in [8u64, 32, 64] {
        let stm = Stm::incremental();
        let vars: Vec<TVar<u64>> = (0..m).map(TVar::new).collect();
        let before = stm.stats().snapshot();
        stm.atomically(|tx| {
            let mut sum = 0;
            for v in &vars {
                sum += tx.read(v)?;
            }
            Ok(sum)
        });
        let d = stm.stats().snapshot().since(&before);
        assert_eq!(d.validation_probes, m * (m - 1) / 2, "m={m}");
    }
}

#[test]
fn tlrw_read_only_transactions_never_validate() {
    // The other end of the time–space tradeoff: visible reads are O(1)
    // each and read-only transactions commit with ZERO validation
    // probes, under any read-set size — where Incremental pays m(m-1)/2
    // (see above) and TL2 still re-checks on conflict.
    for m in [8u64, 64, 256] {
        let stm = Stm::tlrw();
        let vars: Vec<TVar<u64>> = (0..m).map(TVar::new).collect();
        let before = stm.stats().snapshot();
        let sum = stm.atomically(|tx| {
            let mut sum = 0;
            for v in &vars {
                sum += tx.read(v)?;
            }
            Ok(sum)
        });
        assert_eq!(sum, m * (m - 1) / 2);
        let d = stm.stats().snapshot().since(&before);
        assert_eq!(d.validation_probes, 0, "m={m}: visible reads validated");
        assert_eq!(d.reads, m);
        assert_eq!(d.commits, 1);
    }
}

#[test]
fn mv_read_only_transactions_never_abort_under_a_write_storm() {
    // The multi-version acceptance criterion, and the paper's space-axis
    // payoff: read-only transactions under a sustained write storm
    // commit with ZERO aborts and ZERO validation probes — every scan
    // resolves against the consistent snapshot its start time names.
    // The single-version algorithms cannot do this: under the same storm
    // they pay aborts (Tl2/Tlrw) or validation probes (Incremental,
    // NOrec), which `long_scan` in BENCH_native_stm.json measures.
    const VARS: usize = 64;
    const SCANS: u64 = 200;
    let stm = Arc::new(Stm::mv());
    // Writers keep pairs equal (vars[2k] == vars[2k+1]), so any torn
    // snapshot is detectable by the scan itself.
    let vars: Vec<TVar<u64>> = (0..VARS).map(|_| TVar::new(0)).collect();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut reader_attempts = 0u64;
    let mut reader_commits = 0u64;
    let before = stm.stats().snapshot();
    std::thread::scope(|s| {
        for t in 0..3usize {
            let stm = Arc::clone(&stm);
            let vars = vars.clone();
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut i = t as u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let k = 2 * ((i as usize + t) % (VARS / 2));
                    i = i.wrapping_add(1);
                    // Blind paired writes: no reads, so writer commits
                    // contribute no validation probes and the probe
                    // counter isolates the read-only side.
                    stm.atomically(|tx| {
                        tx.write(&vars[k], i)?;
                        tx.write(&vars[k + 1], i)
                    });
                }
            });
        }
        for _ in 0..SCANS {
            reader_attempts += 1;
            let pairs_ok = stm.atomically(|tx| {
                let mut ok = true;
                for k in 0..(VARS / 2) {
                    let a = tx.read(&vars[2 * k])?;
                    let b = tx.read(&vars[2 * k + 1])?;
                    ok &= a == b;
                }
                Ok(ok)
            });
            reader_commits += 1;
            assert!(pairs_ok, "snapshot scan observed a torn pair");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    let d = stm.stats().snapshot().since(&before);
    assert_eq!(
        reader_attempts, reader_commits,
        "read-only transactions must commit first try — zero aborts"
    );
    assert_eq!(d.validation_probes, 0, "nobody validated anything");
    assert_eq!(d.snapshot_reads, d.reads, "every read was a snapshot read");
    assert!(d.commits >= SCANS, "scans all committed");
}

#[test]
fn mv_version_chains_trim_back_after_writers_and_readers_quiesce() {
    // The space half of the Mv bargain, with live-instance accounting: a
    // pinned old snapshot forces chains to grow; once it resolves, the
    // low-watermark collector trims every chain back to O(1) and the
    // epoch collector frees every superseded box — no leaks, no
    // double-drops under churn.
    struct Counted {
        live: Arc<std::sync::atomic::AtomicI64>,
        tag: u64,
    }
    impl Counted {
        fn new(live: &Arc<std::sync::atomic::AtomicI64>, tag: u64) -> Self {
            live.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Counted {
                live: Arc::clone(live),
                tag,
            }
        }
    }
    impl Clone for Counted {
        fn clone(&self) -> Self {
            // Every clone the engine makes (read snapshots included)
            // counts, or drops would drive the balance negative.
            Counted::new(&self.live, self.tag)
        }
    }
    impl PartialEq for Counted {
        fn eq(&self, other: &Self) -> bool {
            self.tag == other.tag
        }
    }
    impl Drop for Counted {
        fn drop(&mut self) {
            self.live.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
        }
    }

    const ROUNDS: u64 = 120;
    let live = Arc::new(std::sync::atomic::AtomicI64::new(0));
    let stm = Arc::new(Stm::mv());
    let a = TVar::new(Counted::new(&live, 0));
    let b = TVar::new(Counted::new(&live, 0));
    let hold = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        // A reader camps on the initial snapshot, which pins version 0
        // of both chains while the writer below piles versions on.
        let stm2 = Arc::clone(&stm);
        let (a2, b2) = (a.clone(), b.clone());
        let (hold2, release2) = (Arc::clone(&hold), Arc::clone(&release));
        s.spawn(move || {
            stm2.atomically(|tx| {
                let x = tx.read(&a2)?;
                hold2.store(true, std::sync::atomic::Ordering::SeqCst);
                while !release2.load(std::sync::atomic::Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                let y = tx.read(&b2)?;
                assert_eq!(x.tag, 0, "snapshot pinned at the initial cut");
                assert_eq!(y.tag, 0, "late read still resolves to the cut");
                Ok(())
            });
        });
        while !hold.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::yield_now();
        }
        for i in 1..=ROUNDS {
            stm.atomically(|tx| {
                tx.write(&a, Counted::new(&live, i))?;
                tx.write(&b, Counted::new(&live, i))
            });
        }
        // The camped snapshot blocks trimming below it: chains hold the
        // pinned cut and everything after it.
        assert!(
            a.versions_retained() > ROUNDS as usize / 2,
            "chain must have grown under the pinned snapshot, got {}",
            a.versions_retained()
        );
        release.store(true, std::sync::atomic::Ordering::SeqCst);
    });
    // Reader gone: the next commits trim each chain back to O(1).
    for i in 0..4u64 {
        stm.atomically(|tx| {
            tx.write(&a, Counted::new(&live, 1000 + i))?;
            tx.write(&b, Counted::new(&live, 1000 + i))
        });
    }
    // O(1), not exactly 1: the final committer's own snapshot (drawn one
    // tick before its write stamp) pins the version just below the head
    // until the transaction resolves, which is after its trim pass.
    assert!(a.versions_retained() <= 2, "{}", a.versions_retained());
    assert!(b.versions_retained() <= 2, "{}", b.versions_retained());
    let snap = stm.stats().snapshot();
    assert!(
        snap.versions_trimmed >= 2 * ROUNDS,
        "the collector reclaimed the storm's versions, got {}",
        snap.versions_trimmed
    );
    assert!(snap.max_chain_len > ROUNDS / 2, "growth was observed");
    // Detached versions sit in epoch bags until a collection cycle runs;
    // churn an unrelated instance until only the retained chain nodes
    // remain live.
    let retained = (a.versions_retained() + b.versions_retained()) as i64;
    let churn = TVar::new(0u64);
    let churn_stm = Stm::tl2();
    for round in 0..100_000u64 {
        if live.load(std::sync::atomic::Ordering::SeqCst) == retained {
            break;
        }
        churn_stm.atomically(|tx| tx.modify(&churn, |x| x + 1));
        assert!(
            round < 99_999,
            "epoch collector never caught up: live={} retained={}",
            live.load(std::sync::atomic::Ordering::SeqCst),
            retained
        );
    }
    assert_eq!(
        live.load(std::sync::atomic::Ordering::SeqCst),
        retained,
        "exactly the retained chain nodes remain live — no leak, no double-drop"
    );
    drop((a, b));
    assert_eq!(
        live.load(std::sync::atomic::Ordering::SeqCst),
        0,
        "dropping the vars frees the heads"
    );
}

#[test]
fn mv_updating_transactions_still_validate_and_conflict() {
    // Multi-versioning buys abort-freedom for read-only transactions
    // ONLY: an updater whose read set was overwritten must still abort
    // (otherwise write skew would slip through — the conformance suite
    // checks that too, this pins the counter evidence).
    let stm = Stm::mv();
    let v = TVar::new(0u64);
    let before = stm.stats().snapshot();
    let mut interfered = false;
    stm.atomically(|tx| {
        let x = tx.read(&v)?;
        if !interfered {
            interfered = true;
            // A same-instance commit supersedes the snapshot we read.
            stm.atomically(|tx2| tx2.modify(&v, |y| y + 10));
        }
        tx.write(&v, x + 1)
    });
    // First attempt aborted at commit (stale read), retry saw 10.
    assert_eq!(v.load(), 11);
    let d = stm.stats().snapshot().since(&before);
    assert_eq!(d.aborts, 1, "stale updater must retry exactly once");
    assert!(d.validation_probes >= 1, "updaters do validate");
}

#[test]
fn mv_nested_updater_sees_fresh_snapshots_and_cannot_livelock() {
    // Regression: an inner transaction nested in a live outer one used
    // to inherit the outer snapshot on EVERY attempt, so once a stripe
    // it read was stamped past that snapshot, no retry could ever
    // validate — the inner `atomically` spun to retry exhaustion. The
    // slot still publishes the outer (older) snapshot for watermark
    // protection, but each inner attempt draws its rv fresh.
    let stm = Stm::builder(Algorithm::Mv).max_attempts(64).build();
    let gate = TVar::new(0u64);
    let v = TVar::new(0u64);
    stm.atomically(|tx| {
        tx.read(&gate)?; // pins the outer snapshot before any commit
                         // This commit stamps v's stripe past the outer snapshot...
        stm.atomically(|t2| t2.write(&v, 1));
        // ...so this nested updater MUST see it to validate; with the
        // stale inherited snapshot it would exhaust its 64 attempts.
        stm.atomically(|t2| t2.modify(&v, |x| x + 1));
        Ok(())
    });
    assert_eq!(v.load(), 2);
}

#[test]
fn mv_sequential_handoff_reads_the_current_value() {
    // A variable written under one (now finished) Mv instance and read
    // under a fresh one: the fresh clock sits below every retained
    // stamp, and the snapshot walk must agree with `load()` — the
    // current value — not whatever stale version the chain ends on
    // (Mv instances leave 2 retained versions behind).
    let v = TVar::new(0u64);
    {
        let a = Stm::mv();
        for i in 1..=3u64 {
            a.atomically(|tx| tx.write(&v, i * 10));
        }
    }
    assert!(v.versions_retained() >= 2, "handoff leaves a real chain");
    let b = Stm::mv();
    let seen = b.atomically(|tx| tx.read(&v));
    assert_eq!(seen, 30, "snapshot read agrees with the current value");
    assert_eq!(v.load(), 30);
}

#[test]
fn mv_capped_chains_stay_bounded_and_evictions_stay_opaque() {
    // `MvConfig::max_versions` restores the simulated ring's oldest-
    // snapshot-abort semantics: a camped snapshot the ring rolled past
    // pays an observable eviction abort and retries at a fresh snapshot,
    // retention stays bounded by the cap, concurrent transfers still
    // conserve, and the whole recorded run — eviction abort included —
    // passes the opacity checker.
    let rec = HistoryRecorder::new();
    let stm = Arc::new(
        Stm::builder(Algorithm::Mv)
            .mv_config(MvConfig {
                max_versions: Some(4),
            })
            .record_history(rec.clone())
            .build(),
    );

    // Part 1: the deterministic eviction. A camper thread pins snapshot
    // 0, the main thread rolls the 4-deep ring 32 versions past it
    // (channel-sequenced, so the interleaving is exact), and the
    // camper's next read must abort-and-retry rather than serve an
    // evicted version. The storm runs on its own thread because the
    // recorder's history parser (correctly) rejects transactions
    // nested on one thread as overlapping.
    let v = TVar::new(0u64);
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let (go_tx, go_rx) = std::sync::mpsc::channel();
    let (last, attempts) = std::thread::scope(|s| {
        let camper = {
            let stm = Arc::clone(&stm);
            let v = v.clone();
            s.spawn(move || {
                let attempts = std::cell::Cell::new(0u64);
                let last = stm.atomically(|tx| {
                    attempts.set(attempts.get() + 1);
                    let seen = tx.read(&v)?;
                    if attempts.get() == 1 {
                        assert_eq!(seen, 0, "the camper pinned the initial snapshot");
                        ready_tx.send(()).unwrap();
                        go_rx.recv().unwrap();
                    }
                    tx.read(&v)
                });
                (last, attempts.get())
            })
        };
        ready_rx.recv().unwrap();
        // 16 versions against a 4-cap; the whole run stays under the
        // opacity checker's 128-transaction search bound.
        for i in 1..=16u64 {
            stm.atomically(|t2| t2.write(&v, i));
        }
        go_tx.send(()).unwrap();
        camper.join().unwrap()
    });
    assert_eq!(last, 16, "the eviction retry reads the current value");
    assert_eq!(attempts, 2, "exactly one eviction abort-and-retry");
    assert!(
        v.versions_retained() <= 5,
        "cap (+ in-flight head) bounds retention, got {}",
        v.versions_retained()
    );

    // Part 2: conformance under the cap — deterministic concurrent
    // transfers on the same instance must conserve the total.
    const ACCOUNTS: usize = 8;
    let accounts: Vec<TVar<u64>> = (0..ACCOUNTS).map(|_| TVar::new(1_000)).collect();
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let stm = Arc::clone(&stm);
            let accounts = accounts.clone();
            s.spawn(move || {
                for i in 0..40 {
                    let from = (t + i) as usize % ACCOUNTS;
                    let to = (t + 3 * i + 1) as usize % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let amt = 1 + (t + i) % 5;
                    stm.atomically(|tx| {
                        let a = tx.read(&accounts[from])?;
                        let b = tx.read(&accounts[to])?;
                        tx.write(&accounts[from], a - amt)?;
                        tx.write(&accounts[to], b + amt)
                    });
                }
            });
        }
    });
    let total: u64 = accounts.iter().map(TVar::load).sum();
    assert_eq!(total, ACCOUNTS as u64 * 1_000, "conservation under the cap");

    let d = stm.stats().snapshot();
    assert!(d.eviction_aborts >= 1, "the eviction was observable");
    assert!(
        d.versions_evicted >= 12,
        "the ring rolled through the storm"
    );
    assert!(
        d.max_chain_len <= 5,
        "no chain outgrew the cap, got {}",
        d.max_chain_len
    );

    let h = History::from_log(&rec.drain()).expect("recorded history is well-formed");
    assert!(h.is_complete(), "every attempt is t-complete");
    assert!(
        is_opaque(&h),
        "a history with an eviction abort must stay opaque"
    );
}

/// The deterministic two-phase workload behind the mid-switch tests:
/// a write-heavy transfer phase (drives Adaptive visible) followed by a
/// read-mostly scan phase (drives it back invisible). Transfer amounts
/// are a pure function of the per-thread streams and never balance-
/// capped, so the final balances are schedule-independent — identical
/// across algorithms and across any number of mode switches.
fn phase_shifting_run(stm: &Arc<Stm>) -> Vec<u64> {
    const ACCOUNTS: usize = 4;
    const THREADS: usize = 2;
    const PER_PHASE: u64 = 12;
    let accounts: Vec<TVar<u64>> = (0..ACCOUNTS).map(|_| TVar::new(1_000)).collect();
    // Phase 1: write-heavy (2 reads / 2 writes per transaction).
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let stm = Arc::clone(stm);
            let accounts = accounts.clone();
            s.spawn(move || {
                for i in 0..PER_PHASE {
                    let from = (t as u64 + i) as usize % ACCOUNTS;
                    let to = (t as u64 + 3 * i + 1) as usize % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let amt = 1 + (t as u64 + i) % 5;
                    stm.atomically(|tx| {
                        let a = tx.read(&accounts[from])?;
                        let b = tx.read(&accounts[to])?;
                        tx.write(&accounts[from], a - amt)?;
                        tx.write(&accounts[to], b + amt)
                    });
                }
            });
        }
    });
    // Phase 2: read-mostly (pure scans; balances unchanged).
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let stm = Arc::clone(stm);
            let accounts = accounts.clone();
            s.spawn(move || {
                for _ in 0..PER_PHASE {
                    let sum = stm.atomically(|tx| {
                        let mut acc = 0u64;
                        for a in &accounts {
                            acc += tx.read(a)?;
                        }
                        Ok(acc)
                    });
                    assert_eq!(sum, ACCOUNTS as u64 * 1_000, "scan saw a torn total");
                }
            });
        }
    });
    accounts.iter().map(TVar::load).collect()
}

/// An adaptive instance that samples every 4 commits and switches on a
/// single window's vote — guaranteed to flip modes inside
/// [`phase_shifting_run`]'s two phases.
fn twitchy_adaptive(rec: Option<HistoryRecorder>) -> Arc<Stm> {
    let mut b = Stm::builder(Algorithm::Adaptive).adaptive_config(AdaptiveConfig {
        window_commits: 4,
        hysteresis_windows: 1,
        ..AdaptiveConfig::default()
    });
    if let Some(rec) = rec {
        b = b.record_history(rec);
    }
    Arc::new(b.build())
}

#[test]
fn adaptive_mode_switch_mid_workload_preserves_balances() {
    // The same deterministic phase workload under a static algorithm and
    // under an adaptive instance that demonstrably switched modes must
    // land on identical final balances.
    let baseline = phase_shifting_run(&Arc::new(Stm::tl2()));
    let stm = twitchy_adaptive(None);
    let balances = phase_shifting_run(&stm);
    assert_eq!(baseline, balances, "mode switches changed the outcome");
    let snap = stm.stats().snapshot();
    assert!(
        snap.mode_transitions >= 2,
        "the workload must force a round trip, got {}",
        snap.mode_transitions
    );
    assert_eq!(
        snap.active_mode,
        ActiveMode::Invisible,
        "the read-mostly tail must land the engine back in invisible mode"
    );
    assert_eq!(stm.active_mode(), Algorithm::Tl2);
}

#[test]
fn adaptive_mode_switch_mid_workload_records_an_opaque_history() {
    // Record the phase-shifting run through a real mode switch: the
    // drained history must stay well-formed and pass the opacity checker
    // — the quiesce barrier orders old-mode transactions before
    // new-mode ones in real time, so a switch can only restrict the
    // interleavings the checker must serialize.
    let rec = HistoryRecorder::new();
    let stm = twitchy_adaptive(Some(rec.clone()));
    let balances = phase_shifting_run(&stm);
    assert_eq!(balances.iter().sum::<u64>(), 4_000);
    let snap = stm.stats().snapshot();
    assert!(
        snap.mode_transitions >= 2,
        "a switch happened mid-recording"
    );
    let h = History::from_log(&rec.drain()).expect("recorded history is well-formed");
    assert!(h.is_complete(), "every attempt is t-complete");
    assert!(
        is_opaque(&h),
        "history recorded across a mode switch must be opaque"
    );
}

/// The deterministic two-phase workload behind the double-transition
/// test: a scan-heavy phase (long read-only transactions drive Adaptive
/// into multiversion mode) followed by a write-heavy transfer phase
/// (drives it on to visible mode). Transfer amounts are a pure function
/// of the per-thread streams and never balance-capped, so the final
/// balances are schedule-independent.
fn scan_then_write_run(stm: &Arc<Stm>) -> Vec<u64> {
    const ACCOUNTS: usize = 16;
    const THREADS: usize = 2;
    const PER_PHASE: u64 = 24;
    let accounts: Vec<TVar<u64>> = (0..ACCOUNTS).map(|_| TVar::new(1_000)).collect();
    // Phase 1: scan-heavy — every transaction reads all sixteen accounts.
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let stm = Arc::clone(stm);
            let accounts = accounts.clone();
            s.spawn(move || {
                for _ in 0..PER_PHASE {
                    let sum = stm.atomically(|tx| {
                        let mut acc = 0u64;
                        for a in &accounts {
                            acc += tx.read(a)?;
                        }
                        Ok(acc)
                    });
                    assert_eq!(sum, ACCOUNTS as u64 * 1_000, "scan saw a torn total");
                }
            });
        }
    });
    // Phase 2: write-heavy transfers (2 reads / 2 writes per commit).
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let stm = Arc::clone(stm);
            let accounts = accounts.clone();
            s.spawn(move || {
                for i in 0..PER_PHASE {
                    let from = (t as u64 + i) as usize % ACCOUNTS;
                    let to = (t as u64 + 5 * i + 1) as usize % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let amt = 1 + (t as u64 + i) % 7;
                    stm.atomically(|tx| {
                        let a = tx.read(&accounts[from])?;
                        let b = tx.read(&accounts[to])?;
                        tx.write(&accounts[from], a - amt)?;
                        tx.write(&accounts[to], b + amt)
                    });
                }
            });
        }
    });
    accounts.iter().map(TVar::load).collect()
}

#[test]
fn adaptive_double_transition_through_multiversion_stays_opaque() {
    // Tl2 -> Mv -> Tlrw in one run: the scan-heavy phase routes the
    // engine into multiversion mode, the write-heavy phase routes it on
    // to visible mode, and both epoch-quiesced transitions must preserve
    // balances and record an opaque history.
    let baseline = scan_then_write_run(&Arc::new(Stm::tl2()));
    let rec = HistoryRecorder::new();
    let stm = Arc::new(
        Stm::builder(Algorithm::Adaptive)
            .adaptive_config(AdaptiveConfig {
                window_commits: 4,
                hysteresis_windows: 1,
                mv_scan_reads: 8.0,
                ..AdaptiveConfig::default()
            })
            .record_history(rec.clone())
            .build(),
    );
    let balances = scan_then_write_run(&stm);
    assert_eq!(baseline, balances, "mode switches changed the outcome");
    let snap = stm.stats().snapshot();
    assert!(
        snap.mode_transitions >= 2,
        "the workload must cross two modes, got {}",
        snap.mode_transitions
    );
    assert!(
        snap.snapshot_reads > 0,
        "multiversion mode must have served reads along the way"
    );
    assert_eq!(
        snap.active_mode,
        ActiveMode::Visible,
        "the write-heavy tail must land the engine in visible mode"
    );
    assert_eq!(stm.active_mode(), Algorithm::Tlrw);
    let h = History::from_log(&rec.drain()).expect("recorded history is well-formed");
    assert!(h.is_complete(), "every attempt is t-complete");
    assert!(
        is_opaque(&h),
        "history recorded across Tl2 -> Mv -> Tlrw must be opaque"
    );
}

#[test]
fn norec_value_validation_survives_equal_write_back() {
    // ABA at the value level, asserted at NOrec's strength: a concurrent
    // commit bumps NOrec's sequence clock but writes back the *same*
    // value. Value-based validation must accept this (a version-based
    // check would abort), so the outer transaction commits on its first
    // and only attempt. The algorithm-generic counterpart (correct
    // results under equal write-back, any retry count) runs in the
    // conformance suite above.
    let stm = Stm::norec();
    let v = TVar::new(7u64);
    let w = TVar::new(0u64);
    let mut interfered = false;
    let (a, b) = stm.atomically(|tx| {
        let a = tx.read(&v)?;
        if !interfered {
            interfered = true;
            // Same-Stm commit from inside the body: bumps the sequence
            // lock, writes v := 7 (an equal value).
            stm.atomically(|tx2| tx2.write(&v, 7));
        }
        // The clock moved, so this read triggers full revalidation; the
        // snapshot of `v` still matches by value.
        let b = tx.read(&w)?;
        Ok((a, b))
    });
    assert_eq!((a, b), (7, 0));
    let stats = stm.stats().snapshot();
    // Two commits (inner + outer), zero aborts: the equal write-back was
    // absorbed, not retried.
    assert_eq!(stats.commits, 2);
    assert_eq!(
        stats.aborts, 0,
        "value validation must tolerate equal write-back"
    );

    // Contrast: an *unequal* write-back must abort the reader exactly once.
    let stm = Stm::norec();
    let v = TVar::new(7u64);
    let w = TVar::new(0u64);
    let mut interfered = false;
    stm.atomically(|tx| {
        let _ = tx.read(&v)?;
        if !interfered {
            interfered = true;
            stm.atomically(|tx2| tx2.write(&v, 8));
        }
        let _ = tx.read(&w)?;
        Ok(())
    });
    assert_eq!(
        stm.stats().snapshot().aborts,
        1,
        "changed value must force one retry"
    );
}

#[test]
fn try_once_reports_conflicts_without_retrying() {
    let stm = Stm::tl2();
    let v = TVar::new(1u64);
    // A transaction that always requests retry commits nothing.
    assert!(stm
        .try_once(|tx| {
            tx.write(&v, 2)?;
            Err::<(), Retry>(Retry)
        })
        .is_none());
    assert_eq!(v.load(), 1);
    // A clean one commits.
    assert_eq!(stm.try_once(|tx| tx.read(&v)), Some(1));
}

#[test]
fn heterogeneous_value_types() {
    for algo in ALGOS {
        let stm = Stm::new(algo);
        let name = TVar::new(String::from("alice"));
        let balance = TVar::new(10u64);
        let tags = TVar::new(vec![1u8, 2, 3]);
        let summary = stm.atomically(|tx| {
            let n = tx.read(&name)?;
            let b = tx.read(&balance)?;
            let mut t = tx.read(&tags)?;
            t.push(4);
            tx.write(&tags, t.clone())?;
            Ok(format!("{n}:{b}:{}", t.len()))
        });
        assert_eq!(summary, "alice:10:4", "{algo:?}");
        assert_eq!(tags.load(), vec![1, 2, 3, 4], "{algo:?}");
    }
}

#[test]
fn capped_contention_manager_reports_exhaustion() {
    let stm = Stm::builder(Algorithm::Tl2)
        .contention_manager(CappedAttempts::new(5))
        .build();
    let v = TVar::new(0u64);
    let out = stm.run(|tx| {
        tx.read(&v)?;
        Err::<(), Retry>(Retry)
    });
    assert_eq!(out, Err(RetriesExhausted { attempts: 5 }));
    // The instance advertises its policy.
    let dbg = format!("{stm:?}");
    assert!(dbg.contains("CappedAttempts"), "{dbg}");
}
