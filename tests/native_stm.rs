//! Cross-crate integration tests of the native STM under real
//! concurrency: linearizable counters, multi-variable invariants,
//! conflict statistics, and the quadratic-validation signature of the
//! paper's design point on real threads.

use progressive_tm::stm::{Algorithm, CappedAttempts, RetriesExhausted, Retry, Stm, TVar};
use std::sync::Arc;

const ALGOS: [Algorithm; 3] = [Algorithm::Tl2, Algorithm::Incremental, Algorithm::Norec];

#[test]
fn torture_counter_all_algorithms() {
    for algo in ALGOS {
        let stm = Arc::new(Stm::new(algo));
        let v = TVar::new(0u64);
        let threads = 8;
        let per = 1_000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let stm = Arc::clone(&stm);
                let v = v.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        stm.atomically(|tx| tx.modify(&v, |x| x + 1));
                    }
                });
            }
        });
        assert_eq!(v.load(), threads * per, "{algo:?}");
        let stats = stm.stats().snapshot();
        assert_eq!(stats.commits, threads * per, "{algo:?}");
    }
}

#[test]
fn multi_variable_invariant_under_contention() {
    // x + y + z is preserved by three-way rotations.
    for algo in ALGOS {
        let stm = Arc::new(Stm::new(algo));
        let vars = [TVar::new(300u64), TVar::new(200u64), TVar::new(100u64)];
        std::thread::scope(|s| {
            for t in 0..6 {
                let stm = Arc::clone(&stm);
                let vars = vars.clone();
                s.spawn(move || {
                    for i in 0..500 {
                        let from = (t + i) % 3;
                        let to = (t + i + 1) % 3;
                        stm.atomically(|tx| {
                            let a = tx.read(&vars[from])?;
                            let b = tx.read(&vars[to])?;
                            let amt = a.min(3);
                            tx.write(&vars[from], a - amt)?;
                            tx.write(&vars[to], b + amt)
                        });
                    }
                });
            }
        });
        let total: u64 = vars.iter().map(TVar::load).sum();
        assert_eq!(total, 600, "{algo:?}");
    }
}

#[test]
fn incremental_probe_count_is_exactly_quadratic() {
    // The native echo of Theorem 3(1): m reads cost m(m-1)/2 validation
    // probes in incremental mode, zero in TL2 for read-only transactions.
    for m in [8u64, 32, 64] {
        let stm = Stm::incremental();
        let vars: Vec<TVar<u64>> = (0..m).map(TVar::new).collect();
        let before = stm.stats().snapshot();
        stm.atomically(|tx| {
            let mut sum = 0;
            for v in &vars {
                sum += tx.read(v)?;
            }
            Ok(sum)
        });
        let d = stm.stats().snapshot().since(&before);
        assert_eq!(d.validation_probes, m * (m - 1) / 2, "m={m}");
    }
}

#[test]
fn try_once_reports_conflicts_without_retrying() {
    let stm = Stm::tl2();
    let v = TVar::new(1u64);
    // A transaction that always requests retry commits nothing.
    assert!(stm
        .try_once(|tx| {
            tx.write(&v, 2)?;
            Err::<(), Retry>(Retry)
        })
        .is_none());
    assert_eq!(v.load(), 1);
    // A clean one commits.
    assert_eq!(stm.try_once(|tx| tx.read(&v)), Some(1));
}

#[test]
fn heterogeneous_value_types() {
    let stm = Stm::tl2();
    let name = TVar::new(String::from("alice"));
    let balance = TVar::new(10u64);
    let tags = TVar::new(vec![1u8, 2, 3]);
    let summary = stm.atomically(|tx| {
        let n = tx.read(&name)?;
        let b = tx.read(&balance)?;
        let mut t = tx.read(&tags)?;
        t.push(4);
        tx.write(&tags, t.clone())?;
        Ok(format!("{n}:{b}:{}", t.len()))
    });
    assert_eq!(summary, "alice:10:4");
    assert_eq!(tags.load(), vec![1, 2, 3, 4]);
}

#[test]
fn bank_stress_final_balances_identical_across_algorithms() {
    // Fixed transfer amounts and ample initial balances make the final
    // per-account balance a pure function of the (deterministic) set of
    // transfers, independent of scheduling — so all three algorithms must
    // converge to the *same* balances, not just the same total.
    const ACCOUNTS: usize = 16;
    const THREADS: usize = 6;
    const PER_THREAD: usize = 400;
    const INITIAL: u64 = 1_000_000;

    let run = |algo: Algorithm| -> Vec<u64> {
        let stm = Arc::new(Stm::new(algo));
        let accounts: Vec<TVar<u64>> = (0..ACCOUNTS).map(|_| TVar::new(INITIAL)).collect();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let stm = Arc::clone(&stm);
                let accounts = accounts.clone();
                s.spawn(move || {
                    let mut seed = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                    for _ in 0..PER_THREAD {
                        seed = seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let from = (seed >> 33) as usize % ACCOUNTS;
                        let to = (seed >> 13) as usize % ACCOUNTS;
                        let amt = 1 + (seed >> 50) % 7;
                        if from == to {
                            continue;
                        }
                        stm.atomically(|tx| {
                            let a = tx.read(&accounts[from])?;
                            let b = tx.read(&accounts[to])?;
                            tx.write(&accounts[from], a - amt)?;
                            tx.write(&accounts[to], b + amt)
                        });
                    }
                });
            }
        });
        let balances: Vec<u64> = accounts.iter().map(TVar::load).collect();
        assert_eq!(
            balances.iter().sum::<u64>(),
            ACCOUNTS as u64 * INITIAL,
            "{algo:?}: conservation violated"
        );
        balances
    };

    let tl2 = run(Algorithm::Tl2);
    let incremental = run(Algorithm::Incremental);
    let norec = run(Algorithm::Norec);
    assert_eq!(tl2, incremental, "TL2 vs Incremental balances diverge");
    assert_eq!(tl2, norec, "TL2 vs NOrec balances diverge");
}

#[test]
fn norec_value_validation_survives_equal_write_back() {
    // ABA at the value level: a concurrent commit bumps NOrec's sequence
    // clock but writes back the *same* value. Value-based validation must
    // accept this (a version-based check would abort), so the outer
    // transaction commits on its first and only attempt.
    let stm = Stm::norec();
    let v = TVar::new(7u64);
    let w = TVar::new(0u64);
    let mut interfered = false;
    let (a, b) = stm.atomically(|tx| {
        let a = tx.read(&v)?;
        if !interfered {
            interfered = true;
            // Same-Stm commit from inside the body: bumps the sequence
            // lock, writes v := 7 (an equal value).
            stm.atomically(|tx2| tx2.write(&v, 7));
        }
        // The clock moved, so this read triggers full revalidation; the
        // snapshot of `v` still matches by value.
        let b = tx.read(&w)?;
        Ok((a, b))
    });
    assert_eq!((a, b), (7, 0));
    let stats = stm.stats().snapshot();
    // Two commits (inner + outer), zero aborts: the equal write-back was
    // absorbed, not retried.
    assert_eq!(stats.commits, 2);
    assert_eq!(
        stats.aborts, 0,
        "value validation must tolerate equal write-back"
    );

    // Contrast: an *unequal* write-back must abort the reader exactly once.
    let stm = Stm::norec();
    let v = TVar::new(7u64);
    let w = TVar::new(0u64);
    let mut interfered = false;
    stm.atomically(|tx| {
        let _ = tx.read(&v)?;
        if !interfered {
            interfered = true;
            stm.atomically(|tx2| tx2.write(&v, 8));
        }
        let _ = tx.read(&w)?;
        Ok(())
    });
    assert_eq!(
        stm.stats().snapshot().aborts,
        1,
        "changed value must force one retry"
    );
}

#[test]
fn capped_contention_manager_reports_exhaustion() {
    let stm = Stm::builder(Algorithm::Tl2)
        .contention_manager(CappedAttempts::new(5))
        .build();
    let v = TVar::new(0u64);
    let out = stm.run(|tx| {
        tx.read(&v)?;
        Err::<(), Retry>(Retry)
    });
    assert_eq!(out, Err(RetriesExhausted { attempts: 5 }));
    // The instance advertises its policy.
    let dbg = format!("{stm:?}");
    assert!(dbg.contains("CappedAttempts"), "{dbg}");
}

#[test]
fn aborted_transactions_do_not_leak_writes_under_contention() {
    // Hammer a pair of vars with transactions that abort halfway through
    // (conditionally), verifying atomicity: never (new, old) mixes.
    for algo in ALGOS {
        let stm = Arc::new(Stm::new(algo));
        let a = TVar::new(0u64);
        let b = TVar::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stm = Arc::clone(&stm);
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    for _ in 0..400 {
                        stm.atomically(|tx| {
                            let x = tx.read(&a)?;
                            tx.write(&a, x + 1)?;
                            tx.write(&b, x + 1)?;
                            Ok(())
                        });
                    }
                });
            }
            let stm2 = Arc::clone(&stm);
            let (a2, b2) = (a.clone(), b.clone());
            s.spawn(move || {
                for _ in 0..2_000 {
                    let (x, y) = stm2.atomically(|tx| Ok((tx.read(&a2)?, tx.read(&b2)?)));
                    assert_eq!(x, y, "{algo:?}: torn pair");
                }
            });
        });
        assert_eq!(a.load(), b.load());
        assert_eq!(a.load(), 1_600);
    }
}
