//! Property-based tests of the formal-model checkers and the simulated
//! TMs, driven by proptest.
//!
//! Two families:
//!
//! 1. **Checker metamorphic properties** on synthetic histories (serial
//!    histories are opaque; opacity implies strict serializability;
//!    committed-projection monotonicity).
//! 2. **TM invariants** on randomly scripted simulator executions
//!    (opacity and progressiveness of every TM under arbitrary seeds).

use progressive_tm::core::{ScriptOp, TmHarness, TmKind, TxScript};
use progressive_tm::model;
use progressive_tm::sim::{ProcessId, RandomPolicy, TObjId};
use proptest::prelude::*;

/// A serial workload: a sequence of (object, value, commit?) transactions
/// run back-to-back on one process.
fn serial_history(ops: &[(usize, u64, bool)]) -> model::History {
    let mut h = TmHarness::new(1, |b| TmKind::Progressive.install(b, 3));
    let p = ProcessId::new(0);
    for &(x, v, commit) in ops {
        h.begin(p);
        let _ = h.read(p, TObjId::new(x % 3));
        let _ = h.write(p, TObjId::new(x % 3), v);
        if commit {
            let _ = h.try_commit(p);
        } else {
            // Leave it live; the next begin is only legal after
            // completion, so force a commit anyway — sequential
            // executions on this TM never abort.
            let _ = h.try_commit(p);
        }
    }
    h.stop_all();
    h.history()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serial executions are always opaque and strongly progressive.
    #[test]
    fn serial_executions_are_opaque(
        ops in proptest::collection::vec((0usize..3, 1u64..50, any::<bool>()), 1..6)
    ) {
        let hist = serial_history(&ops);
        prop_assert!(model::is_opaque(&hist));
        prop_assert!(model::is_strictly_serializable(&hist));
        prop_assert!(model::is_strongly_progressive(&hist));
    }

    /// Opacity implies strict serializability on every history our
    /// harness can produce.
    #[test]
    fn opacity_implies_strict_serializability(
        seed in 0u64..500,
        n_procs in 2usize..4,
    ) {
        let n_objects = 2;
        let mut h = TmHarness::new(n_procs, |b| TmKind::Progressive.install(b, n_objects));
        let mut rng_state = seed;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rng_state >> 33
        };
        for p in 0..n_procs {
            let len = 1 + (next() as usize) % 3;
            let ops = (0..len)
                .map(|_| {
                    let x = TObjId::new((next() as usize) % n_objects);
                    if next() % 2 == 0 {
                        ScriptOp::Read(x)
                    } else {
                        ScriptOp::Write(x, next() % 10)
                    }
                })
                .collect();
            h.run_script(ProcessId::new(p), TxScript { ops, retry_until_commit: false });
        }
        h.run_all(&mut RandomPolicy::seeded(seed), 300_000);
        h.stop_all();
        let hist = h.history();
        let opaque = model::is_opaque(&hist);
        let strict = model::is_strictly_serializable(&hist);
        prop_assert!(opaque, "seed {seed}: TM must be opaque");
        prop_assert!(!opaque || strict, "opacity must imply strict serializability");
    }

    /// Every TM stays opaque on arbitrary single-object storms.
    #[test]
    fn storms_are_opaque_for_every_tm(
        seed in 0u64..200,
        tm_idx in 0usize..5,
    ) {
        let tm = progressive_tm::core::ALL_TMS[tm_idx];
        let mut h = TmHarness::new(3, |b| tm.install(b, 1));
        for p in 0..3 {
            h.run_script(
                ProcessId::new(p),
                TxScript {
                    ops: vec![
                        ScriptOp::Read(TObjId::new(0)),
                        ScriptOp::Write(TObjId::new(0), p as u64 + 1),
                    ],
                    retry_until_commit: false,
                },
            );
        }
        h.run_all(&mut RandomPolicy::seeded(seed), 300_000);
        h.stop_all();
        let hist = h.history();
        prop_assert!(model::is_opaque(&hist), "{} seed={seed}", tm.name());
        prop_assert!(model::is_strongly_progressive(&hist), "{} seed={seed}", tm.name());
    }
}

#[test]
fn committed_projection_of_opaque_history_is_strict() {
    // Deterministic spot-check of the metamorphic relation used above.
    let mut h = TmHarness::new(2, |b| TmKind::Tl2.install(b, 2));
    let (p0, p1) = (ProcessId::new(0), ProcessId::new(1));
    h.run_writer(p0, &[(TObjId::new(0), 1)]);
    h.run_writer(p1, &[(TObjId::new(1), 2)]);
    h.stop_all();
    let hist = h.history();
    assert!(model::is_opaque(&hist));
    assert!(model::is_strictly_serializable(&hist));
}
