//! E1/E2 — the executions of Figure 1 and Claim 4 as integration tests,
//! across all TMs and a range of transaction sizes.

use progressive_tm::core::{TmKind, ALL_TMS};
use progressive_tm::sim::TOpResult;
use ptm_bench::figure1::{claim4, figure1a, figure1b, NEW_VALUE};

#[test]
fn figure1a_strict_serializability_forces_new_value() {
    for &tm in ALL_TMS {
        for i in [2usize, 3, 6] {
            let e = figure1a(tm, i);
            assert_eq!(
                e.final_read,
                TOpResult::Value(NEW_VALUE),
                "{} i={i}",
                e.name
            );
            assert!(e.opaque && e.strictly_serializable, "{} i={i}", e.name);
        }
    }
}

#[test]
fn figure1b_lemma2_weak_dap_tms_return_new_value() {
    // Lemma 2's statement targets weak-DAP TMs: ir-progressive and
    // visible-reads must return nv.
    for tm in [TmKind::Progressive, TmKind::Visible] {
        for i in [2usize, 4, 8] {
            let e = figure1b(tm, i);
            assert_eq!(
                e.final_read,
                TOpResult::Value(NEW_VALUE),
                "{} i={i}",
                e.name
            );
            assert!(e.opaque, "{} i={i}", e.name);
        }
    }
}

#[test]
fn figure1b_non_dap_tms_may_abort_but_stay_correct() {
    // (The global-lock TM is excluded: its reader holds the lock, so the
    // paper's interleaving is not producible — see INTERLEAVABLE_TMS.)
    for tm in [TmKind::Tl2, TmKind::Norec] {
        let e = figure1b(tm, 4);
        // Whatever they answer, the execution must be opaque and never
        // return a stale (initial) value for X_i.
        assert_ne!(e.final_read, TOpResult::Value(0), "{}", e.name);
        assert!(e.opaque, "{}", e.name);
    }
}

#[test]
fn claim4_dichotomy_old_value_or_abort() {
    for &tm in ptm_bench::figure1::INTERLEAVABLE_TMS {
        for (i, l) in [(3usize, 0usize), (4, 1), (6, 2)] {
            let e = claim4(tm, i, l);
            assert!(
                e.final_read == TOpResult::Aborted || e.final_read == TOpResult::Value(0),
                "{} (i={i}, l={l}): got {}",
                e.name,
                e.final_read
            );
            assert_ne!(e.final_read, TOpResult::Value(NEW_VALUE), "{}", e.name);
            assert!(e.opaque, "{}", e.name);
        }
    }
}

#[test]
fn claim4_incremental_validation_catches_the_stale_read() {
    // The paper's matching upper bound detects β^ℓ's interference during
    // the i-th read's validation and aborts.
    for (i, l) in [(3usize, 1usize), (5, 2), (8, 0)] {
        let e = claim4(TmKind::Progressive, i, l);
        assert_eq!(e.final_read, TOpResult::Aborted, "i={i} l={l}");
    }
}

#[test]
fn traces_mention_every_transaction() {
    let e = figure1b(TmKind::Progressive, 3);
    let t = e.trace();
    assert!(t.contains("T1"), "reader missing:\n{t}");
    assert!(t.contains("tryC -> C"), "writer commit missing:\n{t}");
}
