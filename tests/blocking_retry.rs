//! Torture tests for the blocking `retry`/`or_else` tier: lost-wakeup
//! hunting across all six algorithms, the adaptive mode switch with
//! consumers parked, the register-vs-commit interleaving window, the
//! `or_else` rollback semantics, and the async bridge.
//!
//! Every blocking scenario runs under a watchdog: a lost wakeup
//! manifests as a hang (the 250 ms safety-net timeout would eventually
//! rescue it, but a *systematic* loss would rescue-loop forever), so the
//! watchdog converts "hung" into "failed" instead of stalling CI.

use progressive_tm::stm::{AdaptiveConfig, Algorithm, Retry, Stm, TVar};
use progressive_tm::structs::TQueue;
use std::collections::HashSet;
use std::future::Future;
use std::pin::Pin;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::thread;
use std::time::{Duration, Instant};

/// Poison pill that tells a consumer to stop.
const STOP: u64 = u64::MAX;

/// Runs `scenario` on a detached thread and fails the test if it does
/// not finish within `timeout`. Detached on purpose: `thread::scope`
/// would join (= hang with) a stuck thread, while a leaked thread lets
/// the test report the hang. State must therefore be `'static` (`Arc`).
fn watchdog(timeout: Duration, scenario: impl FnOnce() + Send + 'static) {
    let (done_tx, done_rx) = mpsc::channel();
    let t = thread::Builder::new()
        .name("scenario".into())
        .spawn(move || {
            scenario();
            let _ = done_tx.send(());
        })
        .expect("spawn scenario");
    match done_rx.recv_timeout(timeout) {
        Ok(()) => {
            let _ = t.join();
        }
        Err(_) => panic!("scenario exceeded its {timeout:?} watchdog — lost wakeup?"),
    }
}

fn all_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Tl2,
        Algorithm::Incremental,
        Algorithm::Norec,
        Algorithm::Tlrw,
        Algorithm::Mv,
        Algorithm::Adaptive,
    ]
}

/// N producers, M blocking consumers, every item observed exactly once.
fn producer_consumer_torture(stm: Arc<Stm>, producers: u64, consumers: u64, per_producer: u64) {
    let q: TQueue<u64> = TQueue::new();
    let seen: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    thread::scope(|s| {
        for c in 0..consumers {
            let (stm, q, seen) = (Arc::clone(&stm), q.clone(), Arc::clone(&seen));
            s.spawn(move || loop {
                let v = stm.atomically(|tx| q.dequeue_wait(tx));
                if v == STOP {
                    break;
                }
                assert!(
                    seen.lock().expect("seen").insert(v),
                    "consumer {c} saw {v} twice"
                );
            });
        }
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let (stm, q) = (Arc::clone(&stm), q.clone());
                s.spawn(move || {
                    for i in 0..per_producer {
                        stm.atomically(|tx| q.enqueue(tx, p * per_producer + i));
                        if i % 16 == 0 {
                            // Let consumers drain so parking actually
                            // happens (an always-full queue never parks).
                            thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("producer");
        }
        for _ in 0..consumers {
            stm.atomically(|tx| q.enqueue(tx, STOP));
        }
    });
    let seen = seen.lock().expect("seen");
    assert_eq!(
        seen.len() as u64,
        producers * per_producer,
        "every produced item must be consumed exactly once"
    );
}

#[test]
fn no_lost_wakeups_under_any_algorithm() {
    for algo in all_algorithms() {
        watchdog(Duration::from_secs(120), move || {
            producer_consumer_torture(Arc::new(Stm::new(algo)), 3, 3, 300);
        });
    }
}

#[test]
fn parked_consumers_survive_an_adaptive_mode_switch() {
    // Consumers park under the invisible mode; the write churn below
    // forces the controller to reinterpret the orec table (reset_all).
    // The waiter lists live beside the words, not in them, so the parked
    // registrations must survive and the post-switch enqueues must land.
    watchdog(Duration::from_secs(120), || {
        let stm = Arc::new(
            Stm::builder(Algorithm::Adaptive)
                .adaptive_config(AdaptiveConfig {
                    window_commits: 16,
                    hysteresis_windows: 1,
                    ..AdaptiveConfig::default()
                })
                .build(),
        );
        let q: TQueue<u64> = TQueue::new();
        let got: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        thread::scope(|s| {
            for _ in 0..2 {
                let (stm, q, got) = (Arc::clone(&stm), q.clone(), Arc::clone(&got));
                s.spawn(move || loop {
                    let v = stm.atomically(|tx| q.dequeue_wait(tx));
                    if v == STOP {
                        break;
                    }
                    got.lock().expect("got").push(v);
                });
            }
            // Give the consumers time to park on the empty queue.
            thread::sleep(Duration::from_millis(50));
            // Write-heavy churn on unrelated vars drives the controller
            // toward visible mode while the consumers stay parked.
            let cells: Vec<TVar<u64>> = (0..8).map(TVar::new).collect();
            for round in 0..64u64 {
                stm.atomically(|tx| {
                    for c in &cells {
                        tx.modify(c, |x| x + round)?;
                    }
                    Ok(())
                });
            }
            // Whatever mode is live now, the enqueues must wake them.
            for v in 0..32u64 {
                stm.atomically(|tx| q.enqueue(tx, v));
            }
            for _ in 0..2 {
                stm.atomically(|tx| q.enqueue(tx, STOP));
            }
        });
        let snap = stm.stats().snapshot();
        assert!(
            snap.mode_transitions >= 1,
            "churn was meant to force a mode switch (got {snap})"
        );
        let mut got = Arc::try_unwrap(got)
            .expect("threads joined")
            .into_inner()
            .expect("got");
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    });
}

#[test]
fn register_vs_commit_interleaving_never_strands_the_waiter() {
    // Hammer the narrow window between waiter registration and the
    // park: a producer that commits right as the consumer registers
    // must either be seen by the pre-park revalidation or deliver a
    // wake. Each round is one park/enqueue handshake; a stranded waiter
    // would eat its full 250 ms safety-net timeout, and 500 of those
    // would blow the watchdog (and the elapsed bound) wide open.
    watchdog(Duration::from_secs(120), || {
        let rounds = 500u64;
        let stm = Arc::new(Stm::tl2());
        let q: TQueue<u64> = TQueue::new();
        let start = Instant::now();
        thread::scope(|s| {
            let consumer = {
                let (stm, q) = (Arc::clone(&stm), q.clone());
                s.spawn(move || {
                    for expect in 0..rounds {
                        assert_eq!(stm.atomically(|tx| q.dequeue_wait(tx)), expect);
                    }
                })
            };
            let (stm, q) = (Arc::clone(&stm), q.clone());
            s.spawn(move || {
                for v in 0..rounds {
                    // No pacing: racing the consumer's register window is
                    // the point.
                    stm.atomically(|tx| q.enqueue(tx, v));
                    while !stm.atomically(|tx| q.is_empty(tx)) {
                        thread::yield_now();
                    }
                }
            });
            consumer.join().expect("consumer");
        });
        let elapsed = start.elapsed();
        let snap = stm.stats().snapshot();
        // Generous bound: even a handful of timed-out parks fit, but a
        // systematic lost wakeup (500 × 250 ms ≈ 125 s) cannot.
        assert!(
            elapsed < Duration::from_secs(30),
            "rounds took {elapsed:?} — waiters are being stranded ({snap})"
        );
    });
}

#[test]
fn parked_consumers_burn_no_cpu_while_idle() {
    // The whole point of the tier: a consumer blocked on an empty queue
    // must sit in `park`, not in a retry loop. Over an idle window, the
    // instance-wide commit/abort/probe deltas must stay flat (a polling
    // consumer racks up thousands of aborted attempts in 200 ms).
    watchdog(Duration::from_secs(60), || {
        let stm = Arc::new(Stm::tl2());
        let q: TQueue<u64> = TQueue::new();
        thread::scope(|s| {
            let (stm2, q2) = (Arc::clone(&stm), q.clone());
            s.spawn(move || {
                assert_eq!(stm2.atomically(|tx| q2.dequeue_wait(tx)), 1);
            });
            thread::sleep(Duration::from_millis(50)); // let it park
            let before = stm.stats().snapshot();
            thread::sleep(Duration::from_millis(200)); // idle window
            let idle = stm.stats().snapshot().since(&before);
            stm.atomically(|tx| q.enqueue(tx, 1));
            assert_eq!(idle.commits, 0, "idle window: {idle}");
            assert!(
                idle.aborts <= 2 && idle.validation_probes <= 16,
                "a parked consumer must be idle, not polling: {idle}"
            );
        });
        assert!(stm.stats().snapshot().parks >= 1);
    });
}

// --- or_else semantics ---------------------------------------------------

#[test]
fn or_else_prefers_the_first_ready_branch() {
    let stm = Stm::tl2();
    let a = TVar::new(Some(1u64));
    let b = TVar::new(Some(2u64));
    let pick = |v: &TVar<Option<u64>>| {
        let v = v.clone();
        move |tx: &mut progressive_tm::stm::Transaction<'_>| match tx.read(&v)? {
            Some(x) => Ok(x),
            None => tx.retry(),
        }
    };
    assert_eq!(stm.atomically(|tx| tx.or_else(pick(&a), pick(&b))), 1);
    stm.atomically(|tx| tx.write(&a, None));
    assert_eq!(stm.atomically(|tx| tx.or_else(pick(&a), pick(&b))), 2);
}

#[test]
fn or_else_rolls_back_the_first_branchs_writes() {
    let stm = Stm::tl2();
    let gate = TVar::new(false);
    let scratch = TVar::new(0u64);
    let out = stm.atomically(|tx| {
        tx.or_else(
            |tx| {
                // Writes something, then decides to wait: the write must
                // not leak into the fallback's world (or the commit).
                tx.write(&scratch, 99)?;
                if tx.read(&gate)? {
                    Ok(1u64)
                } else {
                    tx.retry()
                }
            },
            |tx| tx.read(&scratch),
        )
    });
    assert_eq!(out, 0, "fallback must see the pre-branch value");
    assert_eq!(stm.atomically(|tx| tx.read(&scratch)), 0);
}

#[test]
fn or_else_double_retry_wakes_on_either_footprint() {
    // Both branches wait; the attempt parks on the union, so a write to
    // *either* side must wake it.
    for flip_first in [true, false] {
        watchdog(Duration::from_secs(60), move || {
            let stm = Arc::new(Stm::tl2());
            let a = Arc::new(TVar::new(None::<u64>));
            let b = Arc::new(TVar::new(None::<u64>));
            thread::scope(|s| {
                let (stm2, a2, b2) = (Arc::clone(&stm), Arc::clone(&a), Arc::clone(&b));
                s.spawn(move || {
                    let got = stm2.atomically(|tx| {
                        tx.or_else(
                            |tx| match tx.read(&a2)? {
                                Some(v) => Ok(v),
                                None => tx.retry(),
                            },
                            |tx| match tx.read(&b2)? {
                                Some(v) => Ok(v),
                                None => tx.retry(),
                            },
                        )
                    });
                    assert_eq!(got, 5);
                });
                thread::sleep(Duration::from_millis(50)); // let it park
                let target = if flip_first { &a } else { &b };
                stm.atomically(|tx| tx.write(target, Some(5)));
            });
        });
    }
}

#[test]
fn or_else_refuses_a_poisoned_attempt() {
    // Only a *logical* retry falls through to the fallback. An attempt
    // that is already poisoned (here: a swallowed retry outside the
    // combinator stands in for any doomed attempt) must get Err from
    // or_else without either branch running — running a fallback on a
    // dead attempt would do work the commit can never honor.
    let stm = Stm::tl2();
    let fallback_ran = std::cell::Cell::new(false);
    let out = stm.try_once(|tx| {
        let _: Result<u64, Retry> = tx.retry(); // swallowed: poisons the attempt
        tx.or_else(
            |_tx| -> Result<u64, Retry> { panic!("first branch must not run") },
            |_tx| {
                fallback_ran.set(true);
                Ok(0)
            },
        )
    });
    assert_eq!(out, None, "a poisoned attempt cannot commit");
    assert!(!fallback_ran.get(), "fallback must not run either");
}

// --- async bridge --------------------------------------------------------

/// Minimal single-future executor: parks the test thread between polls.
fn block_on<F: Future>(mut fut: Pin<&mut F>) -> F::Output {
    struct Unpark(thread::Thread);
    impl Wake for Unpark {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }
    let waker = Waker::from(Arc::new(Unpark(thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => thread::park(),
        }
    }
}

#[test]
fn run_async_commits_without_waiting_when_ready() {
    let stm = Stm::tl2();
    let v = TVar::new(41u64);
    let fut = stm.run_async(|tx| {
        let x = tx.read(&v)?;
        tx.write(&v, x + 1)?;
        Ok(x + 1)
    });
    assert_eq!(block_on(std::pin::pin!(fut)), Ok(42));
    assert_eq!(v.load(), 42);
}

#[test]
fn run_async_suspends_on_retry_and_resumes_on_commit() {
    watchdog(Duration::from_secs(60), || {
        let stm = Arc::new(Stm::tl2());
        let inbox = Arc::new(TVar::new(None::<u64>));
        thread::scope(|s| {
            let (stm2, inbox2) = (Arc::clone(&stm), Arc::clone(&inbox));
            s.spawn(move || {
                let fut = stm2.run_async(|tx| match tx.read(&inbox2)? {
                    Some(v) => Ok(v),
                    None => tx.retry(),
                });
                assert_eq!(block_on(std::pin::pin!(fut)), Ok(9));
            });
            thread::sleep(Duration::from_millis(50)); // let it suspend
            stm.atomically(|tx| tx.write(&inbox, Some(9)));
        });
        let snap = stm.stats().snapshot();
        assert!(snap.parks >= 1, "the future should have registered: {snap}");
    });
}

/// A waker that only counts, for polling futures by hand.
struct CountingWaker(std::sync::atomic::AtomicUsize);

impl CountingWaker {
    fn new() -> Arc<Self> {
        Arc::new(CountingWaker(std::sync::atomic::AtomicUsize::new(0)))
    }

    fn count(&self) -> usize {
        self.0.load(std::sync::atomic::Ordering::SeqCst)
    }
}

impl Wake for CountingWaker {
    fn wake(self: Arc<Self>) {
        self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }
}

#[test]
fn run_async_poll_bounds_inline_work() {
    // Regression for the executor-blocking abort path: `poll` used to
    // run the contention manager's blocking `on_abort` (up to a 2^12
    // busy-spin plus `yield_now` per abort) and, under Decision::Retry,
    // loop attempts inline without ever yielding — one poll could burn
    // the entire retry budget on the executor thread. The fixed loop
    // consults the non-blocking `decide` tier and reschedules itself
    // after a small inline attempt budget, counting each reschedule.
    use progressive_tm::stm::ImmediateRetry;

    let stm = Stm::builder(Algorithm::Tl2)
        .max_attempts(40)
        .contention_manager(ImmediateRetry)
        .build();
    let v = TVar::new(0u64);
    let body_runs = std::cell::Cell::new(0u32);
    // Deterministic conflict: every attempt reads `v`, then commits an
    // overlapping write through a nested one-shot transaction, so the
    // outer attempt's validation always fails.
    let fut = stm.run_async(|tx| {
        body_runs.set(body_runs.get() + 1);
        let x = tx.read(&v)?;
        stm.try_once(|t2| t2.modify(&v, |y| y + 1))
            .expect("nested bump commits");
        tx.write(&v, x)?;
        Ok(())
    });
    let mut fut = std::pin::pin!(fut);
    let counter = CountingWaker::new();
    let waker = Waker::from(Arc::clone(&counter));
    let mut cx = Context::from_waker(&waker);

    let mut polls = 0u32;
    let mut max_runs_per_poll = 0u32;
    let out = loop {
        let before = body_runs.get();
        let wakes_before = counter.count();
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => break out,
            Poll::Pending => {
                polls += 1;
                max_runs_per_poll = max_runs_per_poll.max(body_runs.get() - before);
                assert_eq!(
                    counter.count(),
                    wakes_before + 1,
                    "a yielding poll reschedules itself exactly once"
                );
                assert!(polls < 1_000, "future never resolved");
            }
        }
    };
    assert!(out.is_err(), "every attempt conflicts: budget must exhaust");
    assert!(
        max_runs_per_poll <= 4,
        "one poll ran {max_runs_per_poll} attempts inline; the per-poll budget must bound it"
    );
    assert!(
        polls >= 8,
        "40 attempts cannot fit in {polls} bounded polls"
    );
    let snap = stm.stats().snapshot();
    assert_eq!(
        snap.async_yields,
        u64::from(polls),
        "every yield is counted: {snap}"
    );
}

#[test]
fn run_async_conflict_park_registers_instead_of_self_waking() {
    // Regression for the unthrottled Decision::Park degradation: the
    // old path answered a conflict park with `wake_by_ref` + `Pending`,
    // re-polling at executor speed (a pegged core) for as long as the
    // conflict lasted, and never registered on the waiter lists. The
    // fixed path registers the conflict footprint and suspends for
    // real: no wake until an overlapping commit (or the timer
    // watchdog) delivers one.
    #[derive(Debug)]
    struct AlwaysPark;
    impl progressive_tm::stm::ContentionManager for AlwaysPark {
        fn decide(&self, _attempt: u64) -> progressive_tm::stm::Decision {
            progressive_tm::stm::Decision::Park
        }
    }

    let stm = Stm::builder(Algorithm::Tl2)
        .contention_manager(AlwaysPark)
        .build();
    let w = TVar::new(0u64);

    // A prepared (locked, unpublished) writer on `w`'s stripe makes the
    // future's commit fail deterministically while its (empty) read set
    // stays valid — the exact shape that must park, not spin.
    let mut blocker = stm.transaction();
    blocker.write(&w, 7u64).expect("buffer write");
    let prepared = blocker.prepare_commit().expect("uncontended prepare");

    let fut = stm.run_async(|tx| {
        tx.write(&w, 8u64)?;
        Ok(())
    });
    let mut fut = std::pin::pin!(fut);
    let counter = CountingWaker::new();
    let waker = Waker::from(Arc::clone(&counter));
    let mut cx = Context::from_waker(&waker);

    assert!(fut.as_mut().poll(&mut cx).is_pending());
    // The old code had already fired the waker here (and `parks` stayed
    // 0, since nothing registered). Note the 1 ms watchdog *can* fire
    // once enough wall time passes — which is why the no-self-wake
    // check runs immediately after the poll.
    assert_eq!(counter.count(), 0, "a parked poll must not wake itself");
    let snap = stm.stats().snapshot();
    assert!(snap.parks >= 1, "conflict park must register: {snap}");
    assert_eq!(snap.async_yields, 0, "parked, not degraded: {snap}");

    // Publishing the blocker overlaps the parked footprint (the write
    // stripe registers too); its wake sweep delivers synchronously.
    blocker.commit_prepared(prepared);
    assert_eq!(counter.count(), 1, "overlapping commit wakes the future");
    assert!(fut.as_mut().poll(&mut cx).is_ready(), "woken and unblocked");
    assert_eq!(w.load(), 8, "the future's write landed on top");
}

#[test]
fn run_async_is_cancel_safe() {
    // Poll once (registers a waiter), then drop the future: the
    // registration must come off the lists, and later commits must not
    // touch freed state.
    let stm = Stm::tl2();
    let inbox = TVar::new(None::<u64>);
    {
        let fut = stm.run_async(|tx| match tx.read(&inbox)? {
            Some(v) => Ok(v),
            None => tx.retry(),
        });
        let mut fut = std::pin::pin!(fut);
        struct Noop;
        impl Wake for Noop {
            fn wake(self: Arc<Self>) {}
        }
        let waker = Waker::from(Arc::new(Noop));
        let mut cx = Context::from_waker(&waker);
        assert!(fut.as_mut().poll(&mut cx).is_pending());
    } // dropped while registered
    for i in 0..100 {
        stm.atomically(|tx| tx.write(&inbox, Some(i)));
    }
    assert_eq!(inbox.load(), Some(99));
}
