//! Torture tests for the blocking `retry`/`or_else` tier: lost-wakeup
//! hunting across all six algorithms, the adaptive mode switch with
//! consumers parked, the register-vs-commit interleaving window, the
//! `or_else` rollback semantics, and the async bridge.
//!
//! Every blocking scenario runs under a watchdog: a lost wakeup
//! manifests as a hang (the 250 ms safety-net timeout would eventually
//! rescue it, but a *systematic* loss would rescue-loop forever), so the
//! watchdog converts "hung" into "failed" instead of stalling CI.

use progressive_tm::stm::{AdaptiveConfig, Algorithm, Retry, Stm, TVar};
use progressive_tm::structs::TQueue;
use std::collections::HashSet;
use std::future::Future;
use std::pin::Pin;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::thread;
use std::time::{Duration, Instant};

/// Poison pill that tells a consumer to stop.
const STOP: u64 = u64::MAX;

/// Runs `scenario` on a detached thread and fails the test if it does
/// not finish within `timeout`. Detached on purpose: `thread::scope`
/// would join (= hang with) a stuck thread, while a leaked thread lets
/// the test report the hang. State must therefore be `'static` (`Arc`).
fn watchdog(timeout: Duration, scenario: impl FnOnce() + Send + 'static) {
    let (done_tx, done_rx) = mpsc::channel();
    let t = thread::Builder::new()
        .name("scenario".into())
        .spawn(move || {
            scenario();
            let _ = done_tx.send(());
        })
        .expect("spawn scenario");
    match done_rx.recv_timeout(timeout) {
        Ok(()) => {
            let _ = t.join();
        }
        Err(_) => panic!("scenario exceeded its {timeout:?} watchdog — lost wakeup?"),
    }
}

fn all_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Tl2,
        Algorithm::Incremental,
        Algorithm::Norec,
        Algorithm::Tlrw,
        Algorithm::Mv,
        Algorithm::Adaptive,
    ]
}

/// N producers, M blocking consumers, every item observed exactly once.
fn producer_consumer_torture(stm: Arc<Stm>, producers: u64, consumers: u64, per_producer: u64) {
    let q: TQueue<u64> = TQueue::new();
    let seen: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    thread::scope(|s| {
        for c in 0..consumers {
            let (stm, q, seen) = (Arc::clone(&stm), q.clone(), Arc::clone(&seen));
            s.spawn(move || loop {
                let v = stm.atomically(|tx| q.dequeue_wait(tx));
                if v == STOP {
                    break;
                }
                assert!(
                    seen.lock().expect("seen").insert(v),
                    "consumer {c} saw {v} twice"
                );
            });
        }
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let (stm, q) = (Arc::clone(&stm), q.clone());
                s.spawn(move || {
                    for i in 0..per_producer {
                        stm.atomically(|tx| q.enqueue(tx, p * per_producer + i));
                        if i % 16 == 0 {
                            // Let consumers drain so parking actually
                            // happens (an always-full queue never parks).
                            thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("producer");
        }
        for _ in 0..consumers {
            stm.atomically(|tx| q.enqueue(tx, STOP));
        }
    });
    let seen = seen.lock().expect("seen");
    assert_eq!(
        seen.len() as u64,
        producers * per_producer,
        "every produced item must be consumed exactly once"
    );
}

#[test]
fn no_lost_wakeups_under_any_algorithm() {
    for algo in all_algorithms() {
        watchdog(Duration::from_secs(120), move || {
            producer_consumer_torture(Arc::new(Stm::new(algo)), 3, 3, 300);
        });
    }
}

#[test]
fn parked_consumers_survive_an_adaptive_mode_switch() {
    // Consumers park under the invisible mode; the write churn below
    // forces the controller to reinterpret the orec table (reset_all).
    // The waiter lists live beside the words, not in them, so the parked
    // registrations must survive and the post-switch enqueues must land.
    watchdog(Duration::from_secs(120), || {
        let stm = Arc::new(
            Stm::builder(Algorithm::Adaptive)
                .adaptive_config(AdaptiveConfig {
                    window_commits: 16,
                    hysteresis_windows: 1,
                    ..AdaptiveConfig::default()
                })
                .build(),
        );
        let q: TQueue<u64> = TQueue::new();
        let got: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        thread::scope(|s| {
            for _ in 0..2 {
                let (stm, q, got) = (Arc::clone(&stm), q.clone(), Arc::clone(&got));
                s.spawn(move || loop {
                    let v = stm.atomically(|tx| q.dequeue_wait(tx));
                    if v == STOP {
                        break;
                    }
                    got.lock().expect("got").push(v);
                });
            }
            // Give the consumers time to park on the empty queue.
            thread::sleep(Duration::from_millis(50));
            // Write-heavy churn on unrelated vars drives the controller
            // toward visible mode while the consumers stay parked.
            let cells: Vec<TVar<u64>> = (0..8).map(TVar::new).collect();
            for round in 0..64u64 {
                stm.atomically(|tx| {
                    for c in &cells {
                        tx.modify(c, |x| x + round)?;
                    }
                    Ok(())
                });
            }
            // Whatever mode is live now, the enqueues must wake them.
            for v in 0..32u64 {
                stm.atomically(|tx| q.enqueue(tx, v));
            }
            for _ in 0..2 {
                stm.atomically(|tx| q.enqueue(tx, STOP));
            }
        });
        let snap = stm.stats().snapshot();
        assert!(
            snap.mode_transitions >= 1,
            "churn was meant to force a mode switch (got {snap})"
        );
        let mut got = Arc::try_unwrap(got)
            .expect("threads joined")
            .into_inner()
            .expect("got");
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    });
}

#[test]
fn register_vs_commit_interleaving_never_strands_the_waiter() {
    // Hammer the narrow window between waiter registration and the
    // park: a producer that commits right as the consumer registers
    // must either be seen by the pre-park revalidation or deliver a
    // wake. Each round is one park/enqueue handshake; a stranded waiter
    // would eat its full 250 ms safety-net timeout, and 500 of those
    // would blow the watchdog (and the elapsed bound) wide open.
    watchdog(Duration::from_secs(120), || {
        let rounds = 500u64;
        let stm = Arc::new(Stm::tl2());
        let q: TQueue<u64> = TQueue::new();
        let start = Instant::now();
        thread::scope(|s| {
            let consumer = {
                let (stm, q) = (Arc::clone(&stm), q.clone());
                s.spawn(move || {
                    for expect in 0..rounds {
                        assert_eq!(stm.atomically(|tx| q.dequeue_wait(tx)), expect);
                    }
                })
            };
            let (stm, q) = (Arc::clone(&stm), q.clone());
            s.spawn(move || {
                for v in 0..rounds {
                    // No pacing: racing the consumer's register window is
                    // the point.
                    stm.atomically(|tx| q.enqueue(tx, v));
                    while !stm.atomically(|tx| q.is_empty(tx)) {
                        thread::yield_now();
                    }
                }
            });
            consumer.join().expect("consumer");
        });
        let elapsed = start.elapsed();
        let snap = stm.stats().snapshot();
        // Generous bound: even a handful of timed-out parks fit, but a
        // systematic lost wakeup (500 × 250 ms ≈ 125 s) cannot.
        assert!(
            elapsed < Duration::from_secs(30),
            "rounds took {elapsed:?} — waiters are being stranded ({snap})"
        );
    });
}

#[test]
fn parked_consumers_burn_no_cpu_while_idle() {
    // The whole point of the tier: a consumer blocked on an empty queue
    // must sit in `park`, not in a retry loop. Over an idle window, the
    // instance-wide commit/abort/probe deltas must stay flat (a polling
    // consumer racks up thousands of aborted attempts in 200 ms).
    watchdog(Duration::from_secs(60), || {
        let stm = Arc::new(Stm::tl2());
        let q: TQueue<u64> = TQueue::new();
        thread::scope(|s| {
            let (stm2, q2) = (Arc::clone(&stm), q.clone());
            s.spawn(move || {
                assert_eq!(stm2.atomically(|tx| q2.dequeue_wait(tx)), 1);
            });
            thread::sleep(Duration::from_millis(50)); // let it park
            let before = stm.stats().snapshot();
            thread::sleep(Duration::from_millis(200)); // idle window
            let idle = stm.stats().snapshot().since(&before);
            stm.atomically(|tx| q.enqueue(tx, 1));
            assert_eq!(idle.commits, 0, "idle window: {idle}");
            assert!(
                idle.aborts <= 2 && idle.validation_probes <= 16,
                "a parked consumer must be idle, not polling: {idle}"
            );
        });
        assert!(stm.stats().snapshot().parks >= 1);
    });
}

// --- or_else semantics ---------------------------------------------------

#[test]
fn or_else_prefers_the_first_ready_branch() {
    let stm = Stm::tl2();
    let a = TVar::new(Some(1u64));
    let b = TVar::new(Some(2u64));
    let pick = |v: &TVar<Option<u64>>| {
        let v = v.clone();
        move |tx: &mut progressive_tm::stm::Transaction<'_>| match tx.read(&v)? {
            Some(x) => Ok(x),
            None => tx.retry(),
        }
    };
    assert_eq!(stm.atomically(|tx| tx.or_else(pick(&a), pick(&b))), 1);
    stm.atomically(|tx| tx.write(&a, None));
    assert_eq!(stm.atomically(|tx| tx.or_else(pick(&a), pick(&b))), 2);
}

#[test]
fn or_else_rolls_back_the_first_branchs_writes() {
    let stm = Stm::tl2();
    let gate = TVar::new(false);
    let scratch = TVar::new(0u64);
    let out = stm.atomically(|tx| {
        tx.or_else(
            |tx| {
                // Writes something, then decides to wait: the write must
                // not leak into the fallback's world (or the commit).
                tx.write(&scratch, 99)?;
                if tx.read(&gate)? {
                    Ok(1u64)
                } else {
                    tx.retry()
                }
            },
            |tx| tx.read(&scratch),
        )
    });
    assert_eq!(out, 0, "fallback must see the pre-branch value");
    assert_eq!(stm.atomically(|tx| tx.read(&scratch)), 0);
}

#[test]
fn or_else_double_retry_wakes_on_either_footprint() {
    // Both branches wait; the attempt parks on the union, so a write to
    // *either* side must wake it.
    for flip_first in [true, false] {
        watchdog(Duration::from_secs(60), move || {
            let stm = Arc::new(Stm::tl2());
            let a = Arc::new(TVar::new(None::<u64>));
            let b = Arc::new(TVar::new(None::<u64>));
            thread::scope(|s| {
                let (stm2, a2, b2) = (Arc::clone(&stm), Arc::clone(&a), Arc::clone(&b));
                s.spawn(move || {
                    let got = stm2.atomically(|tx| {
                        tx.or_else(
                            |tx| match tx.read(&a2)? {
                                Some(v) => Ok(v),
                                None => tx.retry(),
                            },
                            |tx| match tx.read(&b2)? {
                                Some(v) => Ok(v),
                                None => tx.retry(),
                            },
                        )
                    });
                    assert_eq!(got, 5);
                });
                thread::sleep(Duration::from_millis(50)); // let it park
                let target = if flip_first { &a } else { &b };
                stm.atomically(|tx| tx.write(target, Some(5)));
            });
        });
    }
}

#[test]
fn or_else_refuses_a_poisoned_attempt() {
    // Only a *logical* retry falls through to the fallback. An attempt
    // that is already poisoned (here: a swallowed retry outside the
    // combinator stands in for any doomed attempt) must get Err from
    // or_else without either branch running — running a fallback on a
    // dead attempt would do work the commit can never honor.
    let stm = Stm::tl2();
    let fallback_ran = std::cell::Cell::new(false);
    let out = stm.try_once(|tx| {
        let _: Result<u64, Retry> = tx.retry(); // swallowed: poisons the attempt
        tx.or_else(
            |_tx| -> Result<u64, Retry> { panic!("first branch must not run") },
            |_tx| {
                fallback_ran.set(true);
                Ok(0)
            },
        )
    });
    assert_eq!(out, None, "a poisoned attempt cannot commit");
    assert!(!fallback_ran.get(), "fallback must not run either");
}

// --- async bridge --------------------------------------------------------

/// Minimal single-future executor: parks the test thread between polls.
fn block_on<F: Future>(mut fut: Pin<&mut F>) -> F::Output {
    struct Unpark(thread::Thread);
    impl Wake for Unpark {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }
    let waker = Waker::from(Arc::new(Unpark(thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => thread::park(),
        }
    }
}

#[test]
fn run_async_commits_without_waiting_when_ready() {
    let stm = Stm::tl2();
    let v = TVar::new(41u64);
    let fut = stm.run_async(|tx| {
        let x = tx.read(&v)?;
        tx.write(&v, x + 1)?;
        Ok(x + 1)
    });
    assert_eq!(block_on(std::pin::pin!(fut)), Ok(42));
    assert_eq!(v.load(), 42);
}

#[test]
fn run_async_suspends_on_retry_and_resumes_on_commit() {
    watchdog(Duration::from_secs(60), || {
        let stm = Arc::new(Stm::tl2());
        let inbox = Arc::new(TVar::new(None::<u64>));
        thread::scope(|s| {
            let (stm2, inbox2) = (Arc::clone(&stm), Arc::clone(&inbox));
            s.spawn(move || {
                let fut = stm2.run_async(|tx| match tx.read(&inbox2)? {
                    Some(v) => Ok(v),
                    None => tx.retry(),
                });
                assert_eq!(block_on(std::pin::pin!(fut)), Ok(9));
            });
            thread::sleep(Duration::from_millis(50)); // let it suspend
            stm.atomically(|tx| tx.write(&inbox, Some(9)));
        });
        let snap = stm.stats().snapshot();
        assert!(snap.parks >= 1, "the future should have registered: {snap}");
    });
}

#[test]
fn run_async_is_cancel_safe() {
    // Poll once (registers a waiter), then drop the future: the
    // registration must come off the lists, and later commits must not
    // touch freed state.
    let stm = Stm::tl2();
    let inbox = TVar::new(None::<u64>);
    {
        let fut = stm.run_async(|tx| match tx.read(&inbox)? {
            Some(v) => Ok(v),
            None => tx.retry(),
        });
        let mut fut = std::pin::pin!(fut);
        struct Noop;
        impl Wake for Noop {
            fn wake(self: Arc<Self>) {}
        }
        let waker = Waker::from(Arc::new(Noop));
        let mut cx = Context::from_waker(&waker);
        assert!(fut.as_mut().poll(&mut cx).is_pending());
    } // dropped while registered
    for i in 0..100 {
        stm.atomically(|tx| tx.write(&inbox, Some(i)));
    }
    assert_eq!(inbox.load(), Some(99));
}
