//! Theorem 7 end-to-end: `L(M)` (Algorithm 1) is a correct mutex for
//! every strongly progressive TM in the workspace, under many schedules,
//! and its RMR cost tracks the wrapped TM's within a constant factor.

use progressive_tm::core::{TmKind, TmMutex};
use progressive_tm::model::{mutual_exclusion_violations, passages, satisfies_mutual_exclusion};
use progressive_tm::mutex::{mutex_process_body, run_workload, SimMutex};
use progressive_tm::sim::{BurstPolicy, RandomPolicy, RoundRobin, SchedulePolicy, SimBuilder};
use std::sync::Arc;

fn lm_over(tm: TmKind) -> impl FnOnce(&mut SimBuilder) -> Arc<dyn SimMutex> {
    move |b| Arc::new(TmMutex::install(b, |b| tm.install(b, 1)))
}

/// Every strongly progressive TM yields a working lock.
const TM_ARMS: &[TmKind] = &[
    TmKind::Glock,
    TmKind::Progressive,
    TmKind::Visible,
    TmKind::Tl2,
    TmKind::Norec,
];

#[test]
fn reduction_is_safe_for_every_tm_arm() {
    for &tm in TM_ARMS {
        for seed in [1u64, 7] {
            let r = run_workload(3, 3, lm_over(tm), &mut RandomPolicy::seeded(seed));
            assert!(
                satisfies_mutual_exclusion(&r.log),
                "L({}) seed={seed}: {:?}",
                tm.name(),
                mutual_exclusion_violations(&r.log)
            );
            assert_eq!(passages(&r.log, 3), vec![3, 3, 3], "L({})", tm.name());
        }
    }
}

#[test]
fn reduction_is_safe_under_burst_schedules() {
    for &tm in [TmKind::Glock, TmKind::Progressive].iter() {
        for seed in 0..6 {
            let mut policy = BurstPolicy::seeded(seed, 25);
            let r = run_workload(4, 3, lm_over(tm), &mut policy);
            assert!(
                satisfies_mutual_exclusion(&r.log),
                "L({}) burst seed={seed}",
                tm.name()
            );
        }
    }
}

#[test]
fn reduction_is_safe_under_round_robin() {
    for &tm in TM_ARMS {
        let mut policy = RoundRobin::new();
        let r = run_workload(4, 4, lm_over(tm), &mut policy);
        assert!(satisfies_mutual_exclusion(&r.log), "L({})", tm.name());
        assert_eq!(r.total_passages(), 16);
    }
}

#[test]
fn deadlock_freedom_under_heavy_contention() {
    // 8 processes, all hammering the lock: the workload must finish
    // (run_workload panics on budget exhaustion).
    let r = run_workload(8, 4, lm_over(TmKind::Glock), &mut RandomPolicy::seeded(3));
    assert_eq!(r.total_passages(), 32);
    assert!(satisfies_mutual_exclusion(&r.log));
}

#[test]
fn uncontended_passage_rmr_is_constant() {
    // A single process acquiring repeatedly: per-passage RMR must not
    // grow with the passage count (finite-exit + O(1) handoff).
    let r5 = run_workload(1, 5, lm_over(TmKind::Glock), &mut RoundRobin::new());
    let r50 = run_workload(1, 50, lm_over(TmKind::Glock), &mut RoundRobin::new());
    let per5 = r5.rmr_per_passage_wb();
    let per50 = r50.rmr_per_passage_wb();
    assert!(
        (per50 - per5).abs() < 2.0,
        "per-passage RMR drifted: {per5} vs {per50}"
    );
}

#[test]
fn reduction_rmr_tracks_tm_rmr() {
    // Theorem 7: RMR(L(M)) = O(RMR(M)). Measure the same workload with
    // the raw TM (transactions on one item, no mutex wrapper) and with
    // L(M); the ratio must be bounded by a small constant.
    let n = 4;
    let rounds = 5;

    // Raw TM workload: each process runs `rounds` read-then-write
    // transactions on the single item, retried until commit.
    let mut b = SimBuilder::new(n);
    let tm = TmKind::Glock.install(&mut b, 1);
    for _ in 0..n {
        let tm = Arc::clone(&tm);
        b.add_process(move |ctx| {
            for k in 0..rounds {
                loop {
                    let mut txn = tm.begin(ptm_sim::TxId::new(k as u64));
                    let ok = txn
                        .read(ctx, ptm_sim::TObjId::new(0))
                        .and_then(|v| txn.write(ctx, ptm_sim::TObjId::new(0), v + 1))
                        .and_then(|()| txn.try_commit(ctx));
                    if ok.is_ok() {
                        break;
                    }
                }
            }
        });
    }
    let sim = b.start();
    let mut policy = RandomPolicy::seeded(11);
    progressive_tm::sim::run_policy(&sim, &mut policy, 2_000_000);
    assert!(sim.runnable().is_empty());
    let raw_rmr = sim.metrics().total_rmr_write_back() as f64 / (n * rounds) as f64;

    let lm = run_workload(
        n,
        rounds,
        lm_over(TmKind::Glock),
        &mut RandomPolicy::seeded(11),
    );
    let lm_rmr = lm.rmr_per_passage_wb();

    assert!(
        lm_rmr <= raw_rmr * 6.0 + 24.0,
        "L(M) per-passage RMR {lm_rmr} not within a constant of raw TM {raw_rmr}"
    );
}

#[test]
fn reduction_composes_with_standard_harness() {
    // Direct use without run_workload: custom process bodies.
    let mut b = SimBuilder::new(2);
    let lock: Arc<dyn SimMutex> = Arc::new(TmMutex::install(&mut b, |b| {
        TmKind::Progressive.install(b, 1)
    }));
    for _ in 0..2 {
        let l = Arc::clone(&lock);
        b.add_process(move |ctx| mutex_process_body(l, 2, ctx));
    }
    let sim = b.start();
    let mut policy = RandomPolicy::seeded(2);
    progressive_tm::sim::run_policy(&sim, &mut policy, 1_000_000);
    assert!(sim.runnable().is_empty());
    assert!(satisfies_mutual_exclusion(&sim.log()));
}

#[test]
fn schedule_policy_trait_objects_compose() {
    // The reduction works behind any SchedulePolicy trait object.
    let policies: Vec<Box<dyn SchedulePolicy>> = vec![
        Box::new(RoundRobin::new()),
        Box::new(RandomPolicy::seeded(5)),
        Box::new(BurstPolicy::seeded(5, 8)),
    ];
    for mut p in policies {
        let r = run_workload(3, 2, lm_over(TmKind::Glock), p.as_mut());
        assert!(satisfies_mutual_exclusion(&r.log));
    }
}
