//! E10 — randomized concurrent executions of every TM, audited by the
//! formal-model checkers: opacity, strict serializability,
//! progressiveness, and strong progressiveness.
//!
//! Each configuration runs scripted transactions under a seeded random
//! scheduler, so failures are reproducible from the printed seed.

use progressive_tm::core::{ScriptOp, TmHarness, TmKind, TxScript, ALL_TMS};
use progressive_tm::model;
use progressive_tm::sim::{ProcessId, RandomPolicy, TObjId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random script of 2–4 operations over `n_objects` items.
fn random_script(rng: &mut StdRng, n_objects: usize) -> TxScript {
    let len = rng.gen_range(2..=4);
    let ops = (0..len)
        .map(|_| {
            let x = TObjId::new(rng.gen_range(0..n_objects));
            if rng.gen_bool(0.5) {
                ScriptOp::Read(x)
            } else {
                ScriptOp::Write(x, rng.gen_range(1..100))
            }
        })
        .collect();
    TxScript {
        ops,
        retry_until_commit: false,
    }
}

fn run_random(tm: TmKind, seed: u64, n_procs: usize, scripts_per_proc: usize) {
    let n_objects = 3;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h = TmHarness::new(n_procs, |b| tm.install(b, n_objects));
    for _ in 0..scripts_per_proc {
        for p in 0..n_procs {
            h.run_script(ProcessId::new(p), random_script(&mut rng, n_objects));
        }
        h.run_all(&mut RandomPolicy::seeded(seed.wrapping_mul(31)), 500_000);
    }
    h.stop_all();

    let log = h.log();
    let hist = model::History::from_log(&log).expect("well-formed history");
    let label = format!("{} seed={seed}", tm.name());

    assert!(model::is_opaque(&hist), "{label}: opacity violated");
    assert!(
        model::is_strictly_serializable(&hist),
        "{label}: strict serializability violated"
    );
    assert!(
        model::is_progressive(&hist),
        "{label}: progressiveness violated"
    );
    // Strong progressiveness only where the TM claims it (the TLRW and
    // bounded-MV extensions deliberately trade it away).
    let mut probe = ptm_sim::SimBuilder::new(1);
    if tm.install(&mut probe, 1).properties().strongly_progressive {
        assert!(
            model::is_strongly_progressive(&hist),
            "{label}: strong progressiveness violated"
        );
    }
}

#[test]
fn progressive_random_executions_are_opaque() {
    for seed in 0..12 {
        run_random(TmKind::Progressive, seed, 3, 2);
    }
}

#[test]
fn visible_random_executions_are_opaque() {
    for seed in 0..12 {
        run_random(TmKind::Visible, seed, 3, 2);
    }
}

#[test]
fn tl2_random_executions_are_opaque() {
    for seed in 0..12 {
        run_random(TmKind::Tl2, seed, 3, 2);
    }
}

#[test]
fn norec_random_executions_are_opaque() {
    for seed in 0..12 {
        run_random(TmKind::Norec, seed, 3, 2);
    }
}

#[test]
fn glock_random_executions_are_opaque() {
    for seed in 0..12 {
        run_random(TmKind::Glock, seed, 3, 2);
    }
}

#[test]
fn mv_random_executions_are_opaque() {
    for seed in 0..12 {
        run_random(TmKind::Mv, seed, 3, 2);
    }
}

#[test]
fn tlrw_random_executions_are_opaque() {
    for seed in 0..12 {
        run_random(TmKind::Tlrw, seed, 3, 2);
    }
}

#[test]
fn larger_systems_stay_correct() {
    for &tm in ALL_TMS {
        run_random(tm, 999, 4, 2);
    }
    run_random(TmKind::Mv, 999, 4, 2);
    run_random(TmKind::Tlrw, 999, 4, 2);
}

#[test]
fn burst_schedules_stay_correct() {
    use progressive_tm::sim::BurstPolicy;
    for &tm in ALL_TMS {
        let mut h = TmHarness::new(3, |b| tm.install(b, 3));
        let mut rng = StdRng::seed_from_u64(77);
        for p in 0..3 {
            h.run_script(ProcessId::new(p), random_script(&mut rng, 3));
        }
        // Long solo bursts: the shape of the paper's indistinguishability
        // arguments.
        let mut policy = BurstPolicy::seeded(7, 20);
        let steps = ptm_sim::run_policy(h.sim(), &mut policy, 500_000);
        assert!(steps < 500_000);
        h.stop_all();
        let hist = h.history();
        assert!(model::is_opaque(&hist), "{}", tm.name());
    }
}
