//! The bridge between the native engine and the paper's formal model:
//! record real multi-threaded executions of all six algorithms with
//! [`HistoryRecorder`], parse them with `ptm_model::History::from_log`,
//! and run the opacity / strict-serializability checkers on them — the
//! same checkers the simulator's logs go through. Hand-corrupted logs
//! (a flipped read value, a mismatched response, and the inconsistent
//! snapshot a leaked Tlrw read lock would admit) are rejected, proving
//! the cross-check is not vacuous.

use progressive_tm::model::{is_opaque, is_strictly_serializable, History};
use progressive_tm::sim::{
    LogEntry, LogPayload, Marker, ProcessId, TObjId, TOpDesc, TOpResult, TxId,
};
use progressive_tm::stm::wal::{codec, DurableTicket, MemSink, Wal, WalValue};
use progressive_tm::stm::{Algorithm, HistoryRecorder, Retry, Stm, TVar};
use progressive_tm::structs::TArray;
use std::sync::Arc;

const ALGOS: [Algorithm; 6] = [
    Algorithm::Tl2,
    Algorithm::Incremental,
    Algorithm::Norec,
    Algorithm::Tlrw,
    // Mv histories are the interesting multi-version case: a snapshot
    // reader may return values writers have long since superseded, and
    // the checker must still find the serialization its start time
    // names.
    Algorithm::Mv,
    // Default tuning: these short runs stay in the invisible mode; the
    // forced mid-switch recording lives in `tests/native_stm.rs`.
    Algorithm::Adaptive,
];

/// Builds a recording instance and hands back the recorder for draining.
fn recording_stm(algo: Algorithm) -> (Arc<Stm>, HistoryRecorder) {
    let rec = HistoryRecorder::new();
    let stm = Stm::builder(algo).record_history(rec.clone()).build();
    (Arc::new(stm), rec)
}

/// Parses a drained log, requiring well-formedness.
fn history_of(log: &[LogEntry]) -> History {
    History::from_log(log).expect("recorded histories are well-formed")
}

/// Asserts the checker accepts `h`: opacity when the backtracking search
/// is in range, strict serializability of the (bounded) committed set
/// otherwise (abort storms can inflate the transaction count past the
/// search's 128-candidate limit).
fn assert_checker_accepts(h: &History, ctx: &str) {
    if h.len() <= 120 {
        assert!(is_opaque(h), "{ctx}: recorded history is not opaque");
    } else {
        assert!(
            is_strictly_serializable(h),
            "{ctx}: recorded history is not strictly serializable"
        );
    }
}

/// Total the counter workload must reach: the `(t + i) % 3 == 0`
/// transactions bump both counters, the rest bump one.
fn expected_counter_total(threads: usize, per: u64) -> u64 {
    (0..threads as u64)
        .flat_map(|t| (0..per).map(move |i| if (t + i) % 3 == 0 { 2 } else { 1 }))
        .sum()
}

/// Counter increments across `threads` threads; every committed read is
/// value-constrained, so the checker genuinely verifies the run.
fn record_counter_run(algo: Algorithm, threads: usize, per: u64) -> (Vec<LogEntry>, u64) {
    let (stm, rec) = recording_stm(algo);
    let a = TVar::new(0u64);
    let b = TVar::new(0u64);
    std::thread::scope(|s| {
        for t in 0..threads {
            let stm = Arc::clone(&stm);
            let (a, b) = (a.clone(), b.clone());
            s.spawn(move || {
                for i in 0..per {
                    stm.atomically(|tx| {
                        // Alternate between the shared counters, touching
                        // both on every third transaction.
                        if (t as u64 + i).is_multiple_of(3) {
                            let x = tx.read(&a)?;
                            let y = tx.read(&b)?;
                            tx.write(&a, x + 1)?;
                            tx.write(&b, y + 1)
                        } else if (t as u64 + i).is_multiple_of(2) {
                            tx.modify(&a, |x| x + 1)
                        } else {
                            tx.modify(&b, |x| x + 1)
                        }
                    });
                }
            });
        }
    });
    let stats = stm.stats().snapshot();
    assert!(stats.recorded_events > 0, "recording was on");
    assert_eq!(
        rec.events_recorded(),
        stats.recorded_events,
        "one recorder, one instance: the counters must agree"
    );
    let log = rec.drain();
    // Counters start at zero, so no preamble: the drained log is exactly
    // the instance's recorded events.
    assert_eq!(log.len() as u64, stats.recorded_events);
    (log, a.load() + b.load())
}

#[test]
fn native_counter_histories_are_opaque_all_algorithms() {
    for algo in ALGOS {
        for threads in [2usize, 4] {
            let per = 4;
            let (log, total) = record_counter_run(algo, threads, per);
            assert_eq!(total, expected_counter_total(threads, per), "{algo:?}");
            let h = history_of(&log);
            assert!(h.is_complete(), "{algo:?}: every attempt is t-complete");
            assert_eq!(h.committed().len() as u64, (threads as u64) * per);
            assert_checker_accepts(&h, &format!("{algo:?}/{threads}t"));
        }
    }
}

#[test]
fn eight_thread_histories_parse_and_serialize() {
    for algo in ALGOS {
        let (log, total) = record_counter_run(algo, 8, 2);
        assert_eq!(total, expected_counter_total(8, 2), "{algo:?}");
        let h = history_of(&log);
        assert_eq!(h.committed().len(), 16, "{algo:?}");
        assert!(
            is_strictly_serializable(&h),
            "{algo:?}: 8-thread history must strictly serialize"
        );
        assert_checker_accepts(&h, &format!("{algo:?}/8t"));
    }
}

#[test]
fn nonzero_initial_values_are_installed_by_the_preamble() {
    for algo in ALGOS {
        let (stm, rec) = recording_stm(algo);
        let accounts: Vec<TVar<u64>> = (0..4).map(|_| TVar::new(100)).collect();
        std::thread::scope(|s| {
            for t in 0..3usize {
                let stm = Arc::clone(&stm);
                let accounts = accounts.clone();
                s.spawn(move || {
                    for i in 0..3usize {
                        let from = (t + i) % accounts.len();
                        let to = (t + 2 * i + 1) % accounts.len();
                        if from == to {
                            continue;
                        }
                        stm.atomically(|tx| {
                            let a = tx.read(&accounts[from])?;
                            let b = tx.read(&accounts[to])?;
                            let amt = a.min(7);
                            tx.write(&accounts[from], a - amt)?;
                            tx.write(&accounts[to], b + amt)
                        });
                    }
                });
            }
        });
        assert_eq!(accounts.iter().map(TVar::load).sum::<u64>(), 400);
        let log = rec.drain();
        // The preamble writes the four initial 100s: without it, the
        // first read of 100 would be illegal (the model starts at 0).
        let writes_of_100 = log
            .iter()
            .filter_map(LogEntry::marker)
            .filter(|m| {
                matches!(
                    m,
                    Marker::TxInvoke {
                        op: TOpDesc::Write(_, 100),
                        ..
                    }
                )
            })
            .count();
        assert!(writes_of_100 >= 4, "preamble installs initial balances");
        assert_checker_accepts(&history_of(&log), &format!("{algo:?}/bank"));
    }
}

#[test]
fn tarray_workload_histories_are_opaque() {
    // The data-structure layer over the recorder: TArray slots hold u64,
    // so recorded words are the real values and the checker validates
    // the structure's behaviour, not just its event shape.
    for algo in ALGOS {
        let (stm, rec) = recording_stm(algo);
        let arr = TArray::new(4, 5u64);
        std::thread::scope(|s| {
            for t in 0..3usize {
                let stm = Arc::clone(&stm);
                let arr = arr.clone();
                s.spawn(move || {
                    for i in 0..3usize {
                        let from = (t + i) % arr.len();
                        let to = (t + i + 1) % arr.len();
                        stm.atomically(|tx| {
                            let a = arr.get(tx, from)?;
                            let amt = a.min(2);
                            arr.update(tx, from, |x| x - amt)?;
                            arr.update(tx, to, |x| x + amt)
                        });
                    }
                });
            }
        });
        assert_eq!(arr.load_all().iter().sum::<u64>(), 20);
        let h = history_of(&rec.drain());
        assert_checker_accepts(&h, &format!("{algo:?}/tarray"));
    }
}

#[test]
fn user_retries_and_try_once_close_their_transactions() {
    for algo in ALGOS {
        let rec = HistoryRecorder::new();
        // Tiny attempt budget: the always-failing bodies below must not
        // spin for the default ten million attempts.
        let stm = Stm::builder(algo)
            .max_attempts(3)
            .record_history(rec.clone())
            .build();
        let v = TVar::new(0u64);
        // A body that gives up on odd values: the engine must close the
        // abandoned attempt in the history (tryC -> A) even though no
        // operation conflicted.
        let mut gave_up = 0u32;
        for i in 0..6u64 {
            let out = stm.run(|tx| {
                let x = tx.read(&v)?;
                if i % 2 == 1 {
                    return Err(Retry);
                }
                tx.write(&v, x + 1)
            });
            if out.is_err() {
                gave_up += 1;
            }
        }
        assert!(gave_up > 0, "odd iterations exhausted their budget");
        // try_once aborts are closed the same way.
        let _ = stm.try_once(|tx| {
            tx.read(&v)?;
            Err::<(), Retry>(Retry)
        });
        let h = history_of(&rec.drain());
        assert!(h.is_complete(), "{algo:?}: abandoned attempts were closed");
        assert!(!h.aborted().is_empty(), "{algo:?}: aborts were recorded");
        assert_checker_accepts(&h, &format!("{algo:?}/user-retry"));
    }
}

#[test]
fn poisoned_transactions_cannot_commit_after_a_swallowed_retry() {
    let rec = HistoryRecorder::new();
    let stm = Stm::builder(Algorithm::Tl2)
        .max_attempts(2)
        .record_history(rec.clone())
        .build();
    let v = TVar::new(0u64);
    // The body swallows a (synthetic) failed read by ignoring the error
    // and blundering on; poisoning forces every later op and the commit
    // to fail, so the recorded history stays well-formed.
    let out = stm.run(|tx| {
        let _ = tx.read(&v)?; // records the read
        Err::<(), Retry>(Retry)
    });
    assert!(out.is_err());
    let h = history_of(&rec.drain());
    assert!(h.is_complete());
    assert!(is_opaque(&h));
}

#[test]
fn corrupted_read_value_is_rejected_by_the_checker() {
    for algo in ALGOS {
        let (mut log, _) = record_counter_run(algo, 2, 3);
        assert!(is_opaque(&history_of(&log)), "{algo:?}: pristine log");
        // Flip the first read response to a value nothing ever wrote.
        let target = log
            .iter_mut()
            .find_map(|e| match &mut e.payload {
                LogPayload::Marker(Marker::TxResponse {
                    op: TOpDesc::Read(_),
                    res: res @ TOpResult::Value(_),
                    ..
                }) => Some(res),
                _ => None,
            })
            .expect("counter runs contain read responses");
        *target = TOpResult::Value(1_000_003);
        let h = history_of(&log);
        assert!(
            !is_opaque(&h),
            "{algo:?}: corrupted read value must not be opaque"
        );
        assert!(
            !is_strictly_serializable(&h),
            "{algo:?}: corrupted read value must not serialize"
        );
    }
}

/// Hand-builds the history a *leaked* (or dropped) Tlrw read lock would
/// admit: reader T1 reads X before writer T2 commits, yet also observes
/// T2's write to Y — under visible reads T1's held lock on X makes this
/// impossible, so the checker must reject it. `honest` controls whether
/// T1's second read reports the pre-commit value (a legal history) or
/// the post-commit one (the leak).
fn tlrw_leak_history(honest: bool) -> Vec<LogEntry> {
    let (x, y) = (TObjId::new(0), TObjId::new(1));
    let (t1, t2) = (TxId::new(1), TxId::new(2));
    let (p0, p1) = (ProcessId::new(0), ProcessId::new(1));
    let mut log = Vec::new();
    let mut push = |pid: ProcessId, tx: TxId, op: TOpDesc, res: Option<TOpResult>| {
        let seq = log.len();
        let marker = match res {
            None => Marker::TxInvoke { tx, op },
            Some(res) => Marker::TxResponse { tx, op, res },
        };
        log.push(LogEntry {
            seq,
            pid,
            payload: LogPayload::Marker(marker),
        });
    };
    // T1 reads X = 0 (and, under Tlrw, would now hold X's read lock).
    push(p0, t1, TOpDesc::Read(x), None);
    push(p0, t1, TOpDesc::Read(x), Some(TOpResult::Value(0)));
    // T2 writes X := 5, Y := 5 and commits — entirely inside T1's
    // lifetime, which a held read lock on X forbids.
    push(p1, t2, TOpDesc::Write(x, 5), None);
    push(p1, t2, TOpDesc::Write(x, 5), Some(TOpResult::Ok));
    push(p1, t2, TOpDesc::Write(y, 5), None);
    push(p1, t2, TOpDesc::Write(y, 5), Some(TOpResult::Ok));
    push(p1, t2, TOpDesc::TryCommit, None);
    push(p1, t2, TOpDesc::TryCommit, Some(TOpResult::Committed));
    // T1 then reads Y: 0 serializes T1 before T2; 5 is the leak — T1
    // observes both X-before-T2 and Y-after-T2, so no order exists.
    push(p0, t1, TOpDesc::Read(y), None);
    push(
        p0,
        t1,
        TOpDesc::Read(y),
        Some(TOpResult::Value(if honest { 0 } else { 5 })),
    );
    push(p0, t1, TOpDesc::TryCommit, None);
    push(p0, t1, TOpDesc::TryCommit, Some(TOpResult::Committed));
    log
}

#[test]
fn read_lock_leak_history_is_rejected_by_the_checker() {
    // Sanity first: the honest variant (read lock respected, T1
    // serializes before T2) is a perfectly fine history — so the
    // rejection below is about the leak, not the shape.
    let honest = history_of(&tlrw_leak_history(true));
    assert!(is_opaque(&honest), "pre-commit snapshot must be opaque");
    assert!(is_strictly_serializable(&honest));

    // The leak: same shape, but T1's second read sees T2's write. The
    // history still parses (it is well-formed), yet admits no
    // serialization — T1 reads X from before T2 and Y from after it.
    let leaked = history_of(&tlrw_leak_history(false));
    assert!(
        !is_opaque(&leaked),
        "a leaked read lock's inconsistent snapshot must not be opaque"
    );
    assert!(
        !is_strictly_serializable(&leaked),
        "the committed reader must not serialize"
    );
}

/// The deterministic two-counter stream the durable crosscheck uses:
/// op `i` adds `i` to counter `i % 2`. Returns the state after `k` ops.
fn durable_model_state(k: u64) -> [u64; 2] {
    let mut v = [0u64; 2];
    for i in 1..=k {
        v[(i % 2) as usize] += i;
    }
    v
}

/// Runs `ops` recorded, WAL-logged increments; only the first
/// `sync_up_to` are acknowledged (fsynced). Returns the recorded
/// pre-crash history and the bytes a crash right after op `ops` would
/// preserve — whole records for ops `1..=sync_up_to`, nothing after.
fn durable_recorded_run(algo: Algorithm, ops: u64, sync_up_to: u64) -> (Vec<LogEntry>, Vec<u8>) {
    let rec = HistoryRecorder::new();
    let sink = MemSink::new();
    let wal = Arc::new(Wal::with_sink(Box::new(sink.clone())));
    let stm = Stm::builder(algo)
        .record_history(rec.clone())
        .durability_hook(wal.clone())
        .build();
    let vars = [TVar::new(0u64), TVar::new(0u64)];
    for i in 1..=ops {
        let ticket = DurableTicket::new();
        let var = &vars[(i % 2) as usize];
        stm.atomically(|tx| {
            let x = tx.read(var)?;
            tx.write(var, x + i)?;
            let mut payload = Vec::new();
            (i % 2).encode_wal(&mut payload);
            (x + i).encode_wal(&mut payload);
            tx.stage_durable(Arc::from(&payload[..]), &ticket);
            Ok(())
        });
        if i == sync_up_to {
            // The last acknowledged operation: everything logged so far
            // becomes durable; later appends sit in volatile buffers
            // the "crash" discards.
            wal.wait_durable(ticket.lsn().expect("committed")).unwrap();
        }
    }
    assert_eq!(
        [vars[0].load(), vars[1].load()],
        durable_model_state(ops),
        "{algo:?}: pre-crash state"
    );
    (rec.drain(), sink.durable_bytes())
}

/// Replays a crashed log's clean prefix into a fresh recorded instance
/// (TVars created in the same touch order, so t-object ids line up with
/// the pre-crash history), finishing with a recorded read of both
/// counters. Returns the recovery history and the number of records
/// applied.
fn replay_recorded(algo: Algorithm, durable: &[u8]) -> (Vec<LogEntry>, u64) {
    let decoded = codec::decode_stream(durable);
    let rec = HistoryRecorder::new();
    let stm = Stm::builder(algo).record_history(rec.clone()).build();
    let vars = [TVar::new(0u64), TVar::new(0u64)];
    for r in &decoded.records {
        let mut cur = &r.payload[..];
        let idx = u64::decode_wal(&mut cur).expect("logged var index");
        let value = u64::decode_wal(&mut cur).expect("logged value");
        stm.atomically(|tx| tx.write(&vars[idx as usize], value));
    }
    let applied = decoded.records.len() as u64;
    let state = stm.atomically(|tx| Ok([tx.read(&vars[0])?, tx.read(&vars[1])?]));
    // Recovery must land on a state the pre-crash run actually passed
    // through: the one after exactly `applied` operations.
    assert_eq!(state, durable_model_state(applied), "{algo:?}: recovery");
    (rec.drain(), applied)
}

/// Renumbers a recovery log so it concatenates after a pre-crash log:
/// sequence numbers continue and transaction ids shift past the first
/// run's (t-object ids intentionally stay — they name the same logical
/// counters).
fn renumber(log: Vec<LogEntry>, seq_base: usize, tx_base: u64) -> Vec<LogEntry> {
    log.into_iter()
        .map(|mut e| {
            e.seq += seq_base;
            if let LogPayload::Marker(Marker::TxInvoke { tx, .. } | Marker::TxResponse { tx, .. }) =
                &mut e.payload
            {
                *tx = TxId::new(tx.raw() + tx_base);
            }
            e
        })
        .collect()
}

fn max_tx(log: &[LogEntry]) -> u64 {
    log.iter()
        .filter_map(LogEntry::marker)
        .filter_map(|m| match m {
            Marker::TxInvoke { tx, .. } | Marker::TxResponse { tx, .. } => Some(tx.raw()),
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

/// The durability crosscheck: record a WAL-logged run, crash it with
/// unacknowledged operations in flight, replay the surviving log into a
/// fresh recorded instance, and require the **concatenation** of the
/// two histories to be opaque — recovery's writes must be explainable
/// as a prefix of the very history the first instance recorded.
#[test]
fn recovered_history_concatenates_opaquely_all_algorithms() {
    for algo in ALGOS {
        let (ops, acked) = (12u64, 7u64);
        let (log_a, durable) = durable_recorded_run(algo, ops, acked);
        assert!(is_opaque(&history_of(&log_a)), "{algo:?}: pre-crash log");
        let (log_b, applied) = replay_recorded(algo, &durable);
        // The crash cost exactly the unacknowledged suffix.
        assert_eq!(applied, acked, "{algo:?}: durable prefix length");
        let mut combined = log_a.clone();
        combined.extend(renumber(log_b, log_a.len(), max_tx(&log_a)));
        let h = history_of(&combined);
        assert!(h.is_complete(), "{algo:?}: combined history is complete");
        assert_eq!(
            h.committed().len() as u64,
            ops + applied + 1, // pre-crash txs + replay txs + the final read
            "{algo:?}: committed count"
        );
        assert_checker_accepts(&h, &format!("{algo:?}/recovery"));
    }
}

/// A hand-corrupted log must not smuggle values into the recovered
/// history: the flipped record and everything after it are rejected by
/// the checksum, replay applies only the surviving prefix, and the
/// concatenated history is still opaque (shorter, never wrong).
#[test]
fn corrupted_wal_record_is_rejected_and_recovery_stays_a_prefix() {
    let algo = Algorithm::Tl2;
    let (ops, acked) = (10u64, 8u64);
    let (log_a, durable) = durable_recorded_run(algo, ops, acked);
    // Flip one payload byte mid-log: the CRC must catch it.
    let mut corrupt = durable.clone();
    let target = 3 * codec::framed_len(16) + codec::HEADER_LEN + 2;
    assert!(target < corrupt.len(), "flip lands inside record 3");
    corrupt[target] ^= 0x10;
    let decoded = codec::decode_stream(&corrupt);
    assert_eq!(decoded.records.len(), 3, "records before the flip survive");
    assert!(
        matches!(
            decoded.corruption,
            Some(codec::Corruption::BadChecksum { .. })
        ),
        "the flip is detected, not absorbed: {:?}",
        decoded.corruption
    );
    let (log_b, applied) = replay_recorded(algo, &corrupt);
    assert_eq!(applied, 3, "only the clean prefix is applied");
    let mut combined = log_a.clone();
    combined.extend(renumber(log_b, log_a.len(), max_tx(&log_a)));
    assert_checker_accepts(&history_of(&combined), "tl2/corrupt-recovery");
}

#[test]
fn corrupted_response_marker_is_rejected_by_the_parser() {
    let (mut log, _) = record_counter_run(Algorithm::Tl2, 2, 2);
    // Point a response at the wrong operation: the well-formedness pass
    // itself must refuse the log.
    let target = log
        .iter_mut()
        .find_map(|e| match &mut e.payload {
            LogPayload::Marker(Marker::TxResponse {
                op: op @ TOpDesc::Read(_),
                ..
            }) => Some(op),
            _ => None,
        })
        .expect("read responses exist");
    *target = TOpDesc::TryCommit;
    assert!(
        History::from_log(&log).is_err(),
        "mismatched response must fail to parse"
    );
}
